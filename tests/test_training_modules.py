"""Tests for the unit-granular transformer modules.

The central invariant (the basis of the paper's Figure 10 claim): for ANY
subset of saved units, forward loss and all parameter gradients are
*identical* to the save-everything run — recomputation is a pure
memory/time trade.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.spec import tiny_gpt, tiny_llama
from repro.training.modules import (
    AttentionLayer,
    EmbeddingLayer,
    FFNLayer,
    HeadLayer,
    build_model,
)

ALL_UNITS = (
    "embed.lookup",
    "attn.norm",
    "attn.q",
    "attn.k",
    "attn.v",
    "attn.core",
    "attn.out",
    "ffn.norm",
    "ffn.in",
    "ffn.act",
    "ffn.out",
    "head.norm",
    "head.proj",
)


def _batch(spec, batch=2, seq=8, seed=0):
    rng = np.random.default_rng(seed)
    tokens = rng.integers(0, spec.vocab_size, size=(batch, seq))
    targets = rng.integers(0, spec.vocab_size, size=(batch, seq))
    return tokens, targets


def _grads(model):
    return {
        name: param.grad.copy()
        for name, param in model.named_parameters()
        if param.grad is not None
    }


class TestGradientIdentityUnderRecompute:
    @pytest.mark.parametrize("spec_fn", [tiny_gpt, tiny_llama])
    def test_full_recompute_is_exact(self, spec_fn):
        spec = spec_fn(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=1)
        tokens, targets = _batch(spec)
        loss_saved = model.loss_and_grad(tokens, targets)
        reference = _grads(model)
        model.zero_grad()
        loss_ckpt = model.loss_and_grad(
            tokens, targets, [set() for _ in model.layers]
        )
        assert loss_saved == loss_ckpt
        for name, grad in _grads(model).items():
            assert np.array_equal(grad, reference[name]), name

    @given(saved=st.sets(st.sampled_from(ALL_UNITS)))
    @settings(max_examples=25, deadline=None)
    def test_any_saved_subset_is_exact(self, saved):
        spec = tiny_llama(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=2)
        tokens, targets = _batch(spec, seed=3)
        loss_ref = model.loss_and_grad(tokens, targets)
        reference = _grads(model)
        model.zero_grad()
        loss = model.loss_and_grad(tokens, targets, [saved for _ in model.layers])
        assert loss == loss_ref
        for name, grad in _grads(model).items():
            assert np.array_equal(grad, reference[name]), name

    def test_mixed_per_layer_subsets(self):
        spec = tiny_gpt(num_layers=3, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=4)
        tokens, targets = _batch(spec, seed=5)
        loss_ref = model.loss_and_grad(tokens, targets)
        reference = _grads(model)
        model.zero_grad()
        per_layer = [
            {"attn.q", "ffn.act"},
            set(),
            {"attn.core"},
            {"ffn.in", "ffn.norm"},
            set(),
            {"attn.norm"},
            {"head.norm"},
            set(),
        ]
        loss = model.loss_and_grad(tokens, targets, per_layer)
        assert loss == loss_ref
        for name, grad in _grads(model).items():
            assert np.array_equal(grad, reference[name]), name


class TestLayerBehaviour:
    def test_attention_output_includes_residual(self):
        spec = tiny_gpt(num_layers=1, hidden_size=32)
        rng = np.random.default_rng(0)
        layer = AttentionLayer(spec, rng)
        x = rng.normal(size=(1, 4, 32))
        # Zero the projection: output must reduce to the residual input.
        layer.params["wo"].data[:] = 0.0
        layer.params["bo"].data[:] = 0.0
        out, _ = layer.forward(x)
        assert np.allclose(out, x)

    def test_ffn_output_includes_residual(self):
        spec = tiny_gpt(num_layers=1, hidden_size=32)
        rng = np.random.default_rng(0)
        layer = FFNLayer(spec, rng)
        x = rng.normal(size=(1, 4, 32))
        layer.params["w_out"].data[:] = 0.0
        layer.params["b_out"].data[:] = 0.0
        out, _ = layer.forward(x)
        assert np.allclose(out, x)

    def test_head_requires_targets(self):
        spec = tiny_gpt(num_layers=1, hidden_size=32)
        layer = HeadLayer(spec, np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="set_targets"):
            layer.forward(np.zeros((1, 4, 32)))

    def test_embedding_passes_no_gradient_to_tokens(self):
        spec = tiny_gpt(num_layers=1, hidden_size=32)
        layer = EmbeddingLayer(spec, np.random.default_rng(0))
        tokens = np.array([[1, 2, 3]])
        out, ctx = layer.forward(tokens)
        upstream = layer.backward(ctx, np.ones_like(out))
        assert upstream is None

    def test_causality_of_whole_model(self):
        """Changing a future token must not change earlier logits' loss
        contribution — verified via gradient sparsity on the embedding."""
        spec = tiny_gpt(num_layers=1, hidden_size=32, vocab_size=11)
        model = build_model(spec, seed=0)
        tokens = np.arange(8).reshape(1, 8) % 11
        targets = np.zeros((1, 8), dtype=int)
        model.loss_and_grad(tokens, targets)
        # token at position 7 (id 7) only feeds position 7's prediction;
        # its embedding row must still receive gradient (used once).
        emb_grad = model.layers[0].params["table"].grad
        assert np.abs(emb_grad[7]).sum() > 0

    def test_num_params_matches_spec_formula(self):
        spec = tiny_llama(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=0)
        # The spec's accounting assumes untied weights with no positional
        # table for Llama-style models — exactly the mini model's layout.
        assert model.num_params() == spec.total_params()


class TestDeterminism:
    def test_same_seed_same_weights(self):
        spec = tiny_gpt(num_layers=1, hidden_size=32)
        a = build_model(spec, seed=9)
        b = build_model(spec, seed=9)
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb and np.array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self):
        spec = tiny_gpt(num_layers=1, hidden_size=32)
        a = build_model(spec, seed=1)
        b = build_model(spec, seed=2)
        assert not np.array_equal(
            a.layers[1].params["wq"].data, b.layers[1].params["wq"].data
        )
