"""Tests for plan evaluation (cost model vs simulator agreement)."""

import pytest

from repro.core.evaluate import build_schedule_for_plan, evaluate_plan
from repro.core.search import plan_adapipe, plan_even_partitioning, plan_policy
from repro.core.strategies import RecomputePolicy


class TestEvaluatePlan:
    def test_simulated_time_close_to_model(self, gpt3_ctx):
        """The Section 5.1 analytic model must track the simulator for 1F1B."""
        plan = plan_even_partitioning(gpt3_ctx)
        evaluation = evaluate_plan(plan, gpt3_ctx.cluster)
        assert evaluation.iteration_time == pytest.approx(
            plan.modeled_iteration_time, rel=0.05
        )

    def test_adapipe_simulates_faster_than_dapple_full(self, gpt3_ctx):
        adapipe = evaluate_plan(plan_adapipe(gpt3_ctx), gpt3_ctx.cluster)
        dapple = evaluate_plan(
            plan_policy(gpt3_ctx, RecomputePolicy.FULL, "DAPPLE-Full"),
            gpt3_ctx.cluster,
        )
        assert adapipe.iteration_time < dapple.iteration_time

    def test_infeasible_plan_is_oom_without_simulation(self, gpt3_ctx):
        plan = plan_policy(gpt3_ctx, RecomputePolicy.FULL, "DAPPLE-Full")
        broken = type(plan)(
            method=plan.method,
            parallel=plan.parallel,
            train=plan.train,
            stages=plan.stages,
            modeled_iteration_time=None,
            feasible=False,
            hidden_size=plan.hidden_size,
        )
        evaluation = evaluate_plan(broken, gpt3_ctx.cluster)
        assert evaluation.oom and evaluation.simulation is None
        assert evaluation.iteration_time is None

    def test_memory_enforcement_detects_oom(self, gpt3_ctx):
        plan = plan_policy(gpt3_ctx, RecomputePolicy.NONE, "DAPPLE-Non")
        # Plans built at seq 2048 fit; shrink the cluster's devices via the
        # enforce flag by checking against an artificially small capacity.
        evaluation = evaluate_plan(plan, gpt3_ctx.cluster, enforce_memory=False)
        assert not evaluation.oom
        oom_devices = evaluation.simulation.oom_devices(10 * 1024**3)
        assert oom_devices  # every stage exceeds 10 GiB


class TestBuildSchedule:
    def test_1f1b_schedule_kind(self, gpt3_ctx):
        plan = plan_even_partitioning(gpt3_ctx)
        schedule = build_schedule_for_plan(plan, gpt3_ctx.cluster, "1f1b")
        assert schedule.num_devices == gpt3_ctx.parallel.pipeline_parallel
        assert schedule.hop_time > 0

    def test_gpipe_schedule_kind(self, gpt3_ctx):
        plan = plan_even_partitioning(gpt3_ctx)
        schedule = build_schedule_for_plan(plan, gpt3_ctx.cluster, "gpipe")
        assert schedule.name == "GPipe"

    def test_chimera_schedule_kinds(self, gpt3_ctx):
        plan = plan_even_partitioning(gpt3_ctx)
        assert build_schedule_for_plan(plan, gpt3_ctx.cluster, "chimera").name == "Chimera"
        assert (
            build_schedule_for_plan(plan, gpt3_ctx.cluster, "chimerad").name
            == "ChimeraD"
        )

    def test_unknown_kind_rejected(self, gpt3_ctx):
        plan = plan_even_partitioning(gpt3_ctx)
        with pytest.raises(ValueError):
            build_schedule_for_plan(plan, gpt3_ctx.cluster, "zigzag")
