"""Tests for execution tracing and the result collector."""

import json

import pytest

from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts
from repro.pipeline.tracing import (
    ResultCollector,
    phase_breakdown,
    trace_simulation,
    write_trace_jsonl,
)


@pytest.fixture
def sim():
    costs = [StageCosts(forward=1.0, backward=2.0) for _ in range(4)]
    return simulate(one_f_one_b_schedule(costs, 8))


class TestTrace:
    def test_one_record_per_task(self, sim):
        records = trace_simulation(sim)
        assert len(records) == 2 * 4 * 8

    def test_sorted_by_start(self, sim):
        records = trace_simulation(sim)
        starts = [r.start for r in records]
        assert starts == sorted(starts)

    def test_durations_match_costs(self, sim):
        for record in trace_simulation(sim):
            expected = 1.0 if record.kind == "F" else 2.0
            assert record.duration == pytest.approx(expected)

    def test_jsonl_round_trip(self, sim, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_trace_jsonl(sim, str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count
        first = json.loads(lines[0])
        assert set(first) == {
            "device", "stage", "pipe", "micro_batch", "kind", "start", "end",
        }


class TestPhaseBreakdown:
    def test_phases_sum_to_iteration(self, sim):
        phases = phase_breakdown(sim)
        assert sum(phases.values()) == pytest.approx(sim.iteration_time)

    def test_warmup_is_pipeline_fill(self, sim):
        # Stage 0's first backward waits for mb 0 to traverse all stages.
        phases = phase_breakdown(sim)
        assert phases["warmup"] >= 4 * 1.0  # at least p forwards
        assert phases["steady"] > phases["ending"] > 0

    def test_longer_steady_with_more_micro_batches(self):
        costs = [StageCosts(forward=1.0, backward=2.0) for _ in range(4)]
        short = phase_breakdown(simulate(one_f_one_b_schedule(costs, 6)))
        long = phase_breakdown(simulate(one_f_one_b_schedule(costs, 24)))
        assert long["steady"] > short["steady"]
        assert long["warmup"] == pytest.approx(short["warmup"])


class TestResultCollector:
    def test_best_by_method_prefers_fastest(self):
        collector = ResultCollector()
        collector.add("gpt3", "AdaPipe", 4096, (8, 8, 1), 50.0)
        collector.add("gpt3", "AdaPipe", 4096, (4, 8, 2), 45.0)
        collector.add("gpt3", "DAPPLE-Full", 4096, (8, 8, 1), 60.0)
        best = collector.best_by_method("gpt3", 4096)
        assert best["AdaPipe"]["strategy"] == (4, 8, 2)

    def test_oom_entries_ignored_for_best(self):
        collector = ResultCollector()
        collector.add("gpt3", "DAPPLE-Non", 4096, (8, 8, 1), None)
        assert collector.best_by_method("gpt3", 4096) == {}

    def test_speedup(self):
        collector = ResultCollector()
        collector.add("gpt3", "AdaPipe", 4096, (8, 8, 1), 50.0)
        collector.add("gpt3", "DAPPLE-Full", 4096, (8, 8, 1), 65.0)
        assert collector.speedup("gpt3", 4096, "AdaPipe", "DAPPLE-Full") == (
            pytest.approx(1.3)
        )
        assert collector.speedup("gpt3", 4096, "AdaPipe", "Chimera-Full") is None

    def test_render_marks_oom(self):
        collector = ResultCollector()
        collector.add("gpt3", "DAPPLE-Non", 4096, (8, 8, 1), None, 90 * 1024**3)
        text = collector.render()
        assert "OOM" in text and "90.0" in text

    def test_write_json(self, tmp_path):
        collector = ResultCollector()
        collector.add("gpt3", "AdaPipe", 4096, (8, 8, 1), 50.0)
        path = tmp_path / "results.json"
        collector.write_json(str(path))
        assert json.loads(path.read_text())[0]["method"] == "AdaPipe"
