"""Tests for the optimizers and loss scaler."""

import numpy as np
import pytest

from repro.training.modules import Parameter
from repro.training.optimizer import SGD, Adam, LossScaler


def _quadratic_param(start=5.0):
    return Parameter(np.array([start]))


class TestAdam:
    def test_minimises_quadratic(self):
        param = _quadratic_param()
        adam = Adam([("x", param)], lr=0.1)
        for _ in range(300):
            param.grad = 2 * param.data  # d/dx x^2
            adam.step()
        assert abs(param.data[0]) < 0.05

    def test_skips_params_without_grad(self):
        param = _quadratic_param()
        adam = Adam([("x", param)], lr=0.1)
        adam.step()
        assert param.data[0] == 5.0

    def test_bias_correction_first_step(self):
        param = Parameter(np.array([1.0]))
        adam = Adam([("x", param)], lr=0.1, eps=0.0)
        param.grad = np.array([3.0])
        adam.step()
        # With bias correction, the first update magnitude is exactly lr.
        assert param.data[0] == pytest.approx(1.0 - 0.1)

    def test_weight_decay_shrinks_params(self):
        param = Parameter(np.array([10.0]))
        adam = Adam([("x", param)], lr=0.1, weight_decay=0.1)
        param.grad = np.array([0.0])
        adam.step()
        assert param.data[0] < 10.0

    def test_zero_grad_clears(self):
        param = _quadratic_param()
        adam = Adam([("x", param)], lr=0.1)
        param.grad = np.array([1.0])
        adam.zero_grad()
        assert param.grad is None

    def test_state_bytes_grow_with_params(self):
        param = Parameter(np.zeros(100))
        adam = Adam([("x", param)], lr=0.1)
        param.grad = np.ones(100)
        adam.step()
        assert adam.state_bytes() == 2 * 100 * 8  # two float64 moments


class TestSGD:
    def test_plain_step(self):
        param = Parameter(np.array([2.0]))
        sgd = SGD([("x", param)], lr=0.5)
        param.grad = np.array([1.0])
        sgd.step()
        assert param.data[0] == pytest.approx(1.5)

    def test_momentum_accumulates(self):
        param = Parameter(np.array([0.0]))
        sgd = SGD([("x", param)], lr=1.0, momentum=0.9)
        for _ in range(2):
            param.grad = np.array([1.0])
            sgd.step()
        # First step -1, second step -(0.9 + 1) = -1.9.
        assert param.data[0] == pytest.approx(-2.9)


class TestLossScaler:
    def test_unscales_gradients(self):
        param = Parameter(np.array([0.0]))
        param.grad = np.array([2.0**11])
        scaler = LossScaler(scale=2.0**10)
        assert scaler.unscale_and_check([("x", param)])
        assert param.grad[0] == pytest.approx(2.0)

    def test_overflow_skips_and_backs_off(self):
        param = Parameter(np.array([0.0]))
        param.grad = np.array([np.inf])
        scaler = LossScaler(scale=1024.0)
        assert not scaler.unscale_and_check([("x", param)])
        assert scaler.scale == 512.0

    def test_growth_after_interval(self):
        param = Parameter(np.array([0.0]))
        scaler = LossScaler(scale=8.0, growth_interval=3)
        for _ in range(3):
            param.grad = np.array([1.0])
            scaler.unscale_and_check([("x", param)])
        assert scaler.scale == 16.0
