"""Tests for the schedule generators, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ConfigError
from repro.pipeline.schedules import (
    chimera_schedule,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_schedule,
)
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts, TaskKind


def _costs(p, f=1.0, b=2.0, act=1.0, static=5.0):
    return [
        StageCosts(forward=f, backward=b, activation_bytes=act, static_bytes=static)
        for _ in range(p)
    ]


class TestOneFOneB:
    def test_task_count(self):
        schedule = one_f_one_b_schedule(_costs(3), 5)
        assert len(schedule.all_tasks()) == 2 * 3 * 5

    def test_warmup_depth(self):
        p, n = 4, 8
        schedule = one_f_one_b_schedule(_costs(p), n)
        for stage, tasks in enumerate(schedule.device_tasks):
            warmup = 0
            for task in tasks:
                if task.key.kind != TaskKind.FORWARD:
                    break
                warmup += 1
            assert warmup == min(p - stage - 1, n) + (1 if n > p - stage - 1 else 0)

    def test_alternation_in_steady_phase(self):
        schedule = one_f_one_b_schedule(_costs(2), 6)
        kinds = [t.key.kind for t in schedule.device_tasks[1]]
        # Last stage: strict F B F B ...
        assert kinds == [TaskKind.FORWARD, TaskKind.BACKWARD] * 6

    def test_fewer_micro_batches_than_stages(self):
        schedule = one_f_one_b_schedule(_costs(4), 2)
        simulate(schedule)  # must not deadlock

    @given(
        p=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_deadlocks_and_bounds_memory(self, p, n):
        result = simulate(one_f_one_b_schedule(_costs(p), n))
        for stage, peak in enumerate(result.device_peak_bytes):
            assert peak - 5.0 <= min(p - stage, n) + 1e-9

    @given(
        p=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=10),
        f=st.floats(min_value=0.1, max_value=5.0),
        b=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_lower_bound(self, p, n, f, b):
        """No schedule can beat the per-device work plus the pipeline fill."""
        result = simulate(one_f_one_b_schedule(_costs(p, f, b), n))
        work = n * (f + b)
        fill = (p - 1) * f
        assert result.iteration_time >= max(work, fill) - 1e-9


class TestGPipe:
    def test_all_forwards_precede_backwards(self):
        schedule = gpipe_schedule(_costs(3), 4)
        for tasks in schedule.device_tasks:
            kinds = [t.key.kind for t in tasks]
            first_b = kinds.index(TaskKind.BACKWARD)
            assert all(k == TaskKind.FORWARD for k in kinds[:first_b])
            assert all(k == TaskKind.BACKWARD for k in kinds[first_b:])

    def test_backward_order_reversed(self):
        schedule = gpipe_schedule(_costs(2), 4)
        backwards = [
            t.key.micro_batch
            for t in schedule.device_tasks[0]
            if t.key.kind == TaskKind.BACKWARD
        ]
        assert backwards == [3, 2, 1, 0]

    @given(
        p=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_gpipe_memory_is_n_everywhere(self, p, n):
        result = simulate(gpipe_schedule(_costs(p, static=0.0), n))
        assert result.device_peak_bytes == pytest.approx([float(n)] * p)


class TestInterleaved:
    def test_requires_divisible_micro_batches(self):
        with pytest.raises(ConfigError):
            interleaved_1f1b_schedule(_costs(8), 6, 4)

    def test_requires_divisible_stages(self):
        with pytest.raises(ConfigError):
            interleaved_1f1b_schedule(_costs(7), 8, 4)

    def test_task_count_covers_all_chunks(self):
        schedule = interleaved_1f1b_schedule(_costs(8), 4, 4)
        assert len(schedule.all_tasks()) == 2 * 8 * 4

    def test_device_hosts_its_chunks(self):
        p, v = 4, 2
        schedule = interleaved_1f1b_schedule(_costs(p * v), 4, p)
        for device, tasks in enumerate(schedule.device_tasks):
            stages = {t.key.stage for t in tasks}
            assert stages == {device, device + p}

    def test_statics_summed_per_device(self):
        p, v = 4, 2
        schedule = interleaved_1f1b_schedule(_costs(p * v, static=5.0), 4, p)
        assert schedule.device_static_bytes == [10.0] * p

    @given(
        p=st.integers(min_value=2, max_value=4),
        v=st.integers(min_value=1, max_value=3),
        batches=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_never_deadlocks(self, p, v, batches):
        n = p * batches
        result = simulate(interleaved_1f1b_schedule(_costs(p * v), n, p))
        assert result.iteration_time > 0

    def test_smaller_bubble_fraction_than_1f1b(self):
        """The whole point of interleaving: v chunks shrink the bubble."""
        p, n = 4, 8
        plain = simulate(one_f_one_b_schedule(_costs(p), n))
        split = simulate(
            interleaved_1f1b_schedule(_costs(2 * p, f=0.5, b=1.0), n, p)
        )
        assert split.bubble_ratio < plain.bubble_ratio


class TestChimera:
    def test_requires_even_stages(self):
        with pytest.raises(ConfigError):
            chimera_schedule(_costs(3), 6)

    def test_requires_even_micro_batches(self):
        with pytest.raises(ConfigError):
            chimera_schedule(_costs(4), 5)

    def test_doubled_pipelines_share_devices(self):
        schedule = chimera_schedule(_costs(4), 8)
        for device, tasks in enumerate(schedule.device_tasks):
            pipes = {t.key.pipe for t in tasks}
            assert pipes == {0, 1}
            stages = {(t.key.pipe, t.key.stage) for t in tasks}
            assert (0, device) in stages and (1, 4 - 1 - device) in stages

    def test_static_memory_doubles(self):
        schedule = chimera_schedule(_costs(4, static=5.0), 8)
        assert schedule.device_static_bytes == [10.0] * 4

    def test_task_count(self):
        schedule = chimera_schedule(_costs(4), 8)
        assert len(schedule.all_tasks()) == 2 * 2 * 4 * 4  # 2 pipes x 4 mbs x 4 stages x F/B

    def test_forward_doubling_halves_task_count_and_doubles_weight(self):
        plain = chimera_schedule(_costs(4), 8)
        doubled = chimera_schedule(_costs(4), 8, forward_doubling=True)
        assert len(doubled.all_tasks()) == len(plain.all_tasks()) // 2
        fwd = next(
            t for t in doubled.all_tasks() if t.key.kind == TaskKind.FORWARD
        )
        assert fwd.weight == 2
        assert fwd.activation_bytes == 2.0

    def test_forward_doubling_micro_batch_constraint(self):
        with pytest.raises(ConfigError):
            chimera_schedule(_costs(4), 6, forward_doubling=True)

    @given(
        half_p=st.integers(min_value=1, max_value=3),
        units=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_never_deadlocks(self, half_p, units):
        p = 2 * half_p
        n = p * units
        result = simulate(chimera_schedule(_costs(p), n))
        assert result.iteration_time > 0

    def test_middle_heavy_memory_profile(self):
        """Figure 8's Chimera-Non shape: middle stages store the most."""
        p, n = 8, 16
        result = simulate(chimera_schedule(_costs(p, static=0.0), n))
        peaks = result.device_peak_bytes
        middle = max(peaks[p // 2 - 1], peaks[p // 2])
        assert middle >= peaks[0] and middle >= peaks[-1]

    def test_worse_than_dapple_at_many_micro_batches(self):
        """Section 7.2: bubbles between units make Chimera lose at n >> p."""
        p, n = 4, 32
        dapple = simulate(one_f_one_b_schedule(_costs(p), n))
        chimera = simulate(chimera_schedule(_costs(p), n))
        assert chimera.iteration_time >= dapple.iteration_time * 0.98
