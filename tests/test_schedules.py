"""Tests for the schedule generators, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ConfigError
from repro.pipeline.schedules import (
    chimera_schedule,
    default_recompute_times,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_2bp,
    one_f_one_b_overlapped,
    one_f_one_b_schedule,
)
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts, TaskKind


def _costs(p, f=1.0, b=2.0, act=1.0, static=5.0):
    return [
        StageCosts(forward=f, backward=b, activation_bytes=act, static_bytes=static)
        for _ in range(p)
    ]


class TestOneFOneB:
    def test_task_count(self):
        schedule = one_f_one_b_schedule(_costs(3), 5)
        assert len(schedule.all_tasks()) == 2 * 3 * 5

    def test_warmup_depth(self):
        p, n = 4, 8
        schedule = one_f_one_b_schedule(_costs(p), n)
        for stage, tasks in enumerate(schedule.device_tasks):
            warmup = 0
            for task in tasks:
                if task.key.kind != TaskKind.FORWARD:
                    break
                warmup += 1
            assert warmup == min(p - stage - 1, n) + (1 if n > p - stage - 1 else 0)

    def test_alternation_in_steady_phase(self):
        schedule = one_f_one_b_schedule(_costs(2), 6)
        kinds = [t.key.kind for t in schedule.device_tasks[1]]
        # Last stage: strict F B F B ...
        assert kinds == [TaskKind.FORWARD, TaskKind.BACKWARD] * 6

    def test_fewer_micro_batches_than_stages(self):
        schedule = one_f_one_b_schedule(_costs(4), 2)
        simulate(schedule)  # must not deadlock

    @given(
        p=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_deadlocks_and_bounds_memory(self, p, n):
        result = simulate(one_f_one_b_schedule(_costs(p), n))
        for stage, peak in enumerate(result.device_peak_bytes):
            assert peak - 5.0 <= min(p - stage, n) + 1e-9

    @given(
        p=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=10),
        f=st.floats(min_value=0.1, max_value=5.0),
        b=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_lower_bound(self, p, n, f, b):
        """No schedule can beat the per-device work plus the pipeline fill."""
        result = simulate(one_f_one_b_schedule(_costs(p, f, b), n))
        work = n * (f + b)
        fill = (p - 1) * f
        assert result.iteration_time >= max(work, fill) - 1e-9


class TestTwoBP:
    def test_task_count_and_split_durations(self):
        p, n = 3, 5
        schedule = one_f_one_b_2bp(_costs(p), n)
        tasks = schedule.all_tasks()
        assert len(tasks) == 3 * p * n  # F + Bi + Bw per (stage, mb)
        by_kind = {}
        for task in tasks:
            by_kind.setdefault(task.key.kind, []).append(task)
        # The default 0.5 split halves each backward bit-exactly.
        for gi, gw in zip(
            by_kind[TaskKind.BACKWARD_INPUT], by_kind[TaskKind.BACKWARD_WEIGHT]
        ):
            assert gi.duration + gw.duration == 2.0
        assert TaskKind.BACKWARD not in by_kind

    def test_validates_and_simulates(self):
        schedule = one_f_one_b_2bp(_costs(4), 8, hop_time=0.1)
        schedule.validate()
        simulate(schedule, cache=False)

    def test_grad_weights_deferred_to_drain(self):
        # On every device the last n tasks of the layout are the deferred
        # grad-weight drain for stage 0's device... only stage 0 defers
        # all of them; deeper stages defer p - s - 1 fewer. At minimum the
        # final task on every device is a grad-weight.
        schedule = one_f_one_b_2bp(_costs(4), 8)
        for tasks in schedule.device_tasks:
            assert tasks[-1].key.kind == TaskKind.BACKWARD_WEIGHT

    def test_pinned_bubble_reduction_at_equal_peaks(self):
        # The acceptance fixture: p=4, n=8, F=1, B=2, hop=0.1. 2BP must
        # strictly shrink the bubble while holding every device's peak
        # activation memory at 1F1B's min(n, p - s).
        p, n, hop = 4, 8, 0.1
        base = simulate(one_f_one_b_schedule(_costs(p), n, hop_time=hop))
        split = simulate(one_f_one_b_2bp(_costs(p), n, hop_time=hop))
        assert split.iteration_time < base.iteration_time
        assert split.device_peak_bytes == base.device_peak_bytes

    def test_weight_fraction_validated(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="weight_fraction"):
                one_f_one_b_2bp(_costs(2), 2, weight_fraction=bad)

    @given(
        p=st.integers(min_value=1, max_value=6),
        n=st.integers(min_value=1, max_value=12),
        frac=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_deadlocks_and_matches_1f1b_memory(self, p, n, frac):
        result = simulate(
            one_f_one_b_2bp(_costs(p), n, weight_fraction=frac), cache=False
        )
        base = simulate(one_f_one_b_schedule(_costs(p), n), cache=False)
        assert result.device_peak_bytes == base.device_peak_bytes

    @given(
        p=st.integers(min_value=2, max_value=6),
        n=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_slower_than_1f1b(self, p, n):
        # Deferring grad-weights can only relax the grad-input chain's
        # critical path; with equal per-device work the makespan can't rise.
        base = simulate(one_f_one_b_schedule(_costs(p), n), cache=False)
        split = simulate(one_f_one_b_2bp(_costs(p), n), cache=False)
        assert split.iteration_time <= base.iteration_time + 1e-9


class TestOverlapped:
    def test_default_recompute_times_clamp(self):
        costs = [
            StageCosts(forward=1.0, backward=5.0),  # 5 - 2 = 3
            StageCosts(forward=2.0, backward=2.0),  # clamps to 0
            StageCosts(forward=0.1, backward=1.0),  # 1 - 0.2 = 0.8
        ]
        assert default_recompute_times(costs) == [3.0, 0.0, 0.8]

    def test_explicit_emits_recompute_tasks(self):
        p, n = 4, 6
        costs = _costs(p, f=1.0, b=3.0)  # default recompute = 1.0 > 0
        schedule = one_f_one_b_overlapped(costs, n)
        kinds = [t.key.kind for t in schedule.all_tasks()]
        assert kinds.count(TaskKind.RECOMPUTE) == p * n
        assert all(t.overlap == 0.0 for t in schedule.all_tasks())
        schedule.validate()

    def test_fused_carries_overlap_instead(self):
        p, n = 4, 6
        costs = _costs(p, f=1.0, b=3.0)
        schedule = one_f_one_b_overlapped(costs, n, fused=True)
        kinds = [t.key.kind for t in schedule.all_tasks()]
        assert TaskKind.RECOMPUTE not in kinds
        backwards = [
            t for t in schedule.all_tasks() if t.key.kind == TaskKind.BACKWARD
        ]
        assert all(t.overlap == 1.0 for t in backwards)

    def test_fused_matches_explicit_makespan(self):
        costs = _costs(4, f=1.0, b=3.0)
        explicit = simulate(
            one_f_one_b_overlapped(costs, 8, hop_time=0.4), cache=False
        )
        fused = simulate(
            one_f_one_b_overlapped(costs, 8, hop_time=0.4, fused=True),
            cache=False,
        )
        assert fused.iteration_time == pytest.approx(
            explicit.iteration_time, rel=1e-12
        )
        assert fused.device_peak_bytes == explicit.device_peak_bytes

    def test_overlap_beats_serialized_recompute(self):
        # With a hop to hide under, starting recomputation before the
        # gradient arrives must strictly beat the serialized 1F1B whose
        # backward duration already includes the recompute time.
        costs = _costs(4, f=1.0, b=3.0)
        serialized = simulate(
            one_f_one_b_schedule(costs, 8, hop_time=0.5), cache=False
        )
        overlapped = simulate(
            one_f_one_b_overlapped(costs, 8, hop_time=0.5), cache=False
        )
        assert overlapped.iteration_time < serialized.iteration_time

    def test_zero_recompute_degenerates_to_1f1b(self):
        costs = _costs(3)
        base = simulate(one_f_one_b_schedule(costs, 5, hop_time=0.2))
        for fused in (False, True):
            schedule = one_f_one_b_overlapped(
                costs, 5, hop_time=0.2, recompute_times=[0.0] * 3, fused=fused
            )
            assert len(schedule.all_tasks()) == 2 * 3 * 5
            result = simulate(schedule, cache=False)
            assert result.iteration_time == base.iteration_time

    def test_recompute_times_validated(self):
        costs = _costs(2)
        with pytest.raises(ValueError, match="one recompute time per stage"):
            one_f_one_b_overlapped(costs, 2, recompute_times=[0.5])
        with pytest.raises(ValueError, match="recompute"):
            one_f_one_b_overlapped(costs, 2, recompute_times=[-0.1, 0.5])
        with pytest.raises(ValueError, match="recompute"):
            one_f_one_b_overlapped(costs, 2, recompute_times=[0.5, 9.0])

    @given(
        p=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=10),
        fused=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_deadlocks_and_matches_1f1b_memory(self, p, n, fused):
        costs = _costs(p, f=1.0, b=3.0)
        result = simulate(
            one_f_one_b_overlapped(costs, n, fused=fused), cache=False
        )
        base = simulate(one_f_one_b_schedule(costs, n), cache=False)
        assert result.device_peak_bytes == base.device_peak_bytes


class TestGPipe:
    def test_all_forwards_precede_backwards(self):
        schedule = gpipe_schedule(_costs(3), 4)
        for tasks in schedule.device_tasks:
            kinds = [t.key.kind for t in tasks]
            first_b = kinds.index(TaskKind.BACKWARD)
            assert all(k == TaskKind.FORWARD for k in kinds[:first_b])
            assert all(k == TaskKind.BACKWARD for k in kinds[first_b:])

    def test_backward_order_reversed(self):
        schedule = gpipe_schedule(_costs(2), 4)
        backwards = [
            t.key.micro_batch
            for t in schedule.device_tasks[0]
            if t.key.kind == TaskKind.BACKWARD
        ]
        assert backwards == [3, 2, 1, 0]

    @given(
        p=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_gpipe_memory_is_n_everywhere(self, p, n):
        result = simulate(gpipe_schedule(_costs(p, static=0.0), n))
        assert result.device_peak_bytes == pytest.approx([float(n)] * p)


class TestInterleaved:
    def test_requires_divisible_micro_batches(self):
        with pytest.raises(ConfigError):
            interleaved_1f1b_schedule(_costs(8), 6, 4)

    def test_requires_divisible_stages(self):
        with pytest.raises(ConfigError):
            interleaved_1f1b_schedule(_costs(7), 8, 4)

    def test_task_count_covers_all_chunks(self):
        schedule = interleaved_1f1b_schedule(_costs(8), 4, 4)
        assert len(schedule.all_tasks()) == 2 * 8 * 4

    def test_device_hosts_its_chunks(self):
        p, v = 4, 2
        schedule = interleaved_1f1b_schedule(_costs(p * v), 4, p)
        for device, tasks in enumerate(schedule.device_tasks):
            stages = {t.key.stage for t in tasks}
            assert stages == {device, device + p}

    def test_statics_summed_per_device(self):
        p, v = 4, 2
        schedule = interleaved_1f1b_schedule(_costs(p * v, static=5.0), 4, p)
        assert schedule.device_static_bytes == [10.0] * p

    @given(
        p=st.integers(min_value=2, max_value=4),
        v=st.integers(min_value=1, max_value=3),
        batches=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_never_deadlocks(self, p, v, batches):
        n = p * batches
        result = simulate(interleaved_1f1b_schedule(_costs(p * v), n, p))
        assert result.iteration_time > 0

    def test_smaller_bubble_fraction_than_1f1b(self):
        """The whole point of interleaving: v chunks shrink the bubble."""
        p, n = 4, 8
        plain = simulate(one_f_one_b_schedule(_costs(p), n))
        split = simulate(
            interleaved_1f1b_schedule(_costs(2 * p, f=0.5, b=1.0), n, p)
        )
        assert split.bubble_ratio < plain.bubble_ratio


class TestChimera:
    def test_requires_even_stages(self):
        with pytest.raises(ConfigError):
            chimera_schedule(_costs(3), 6)

    def test_requires_even_micro_batches(self):
        with pytest.raises(ConfigError):
            chimera_schedule(_costs(4), 5)

    def test_doubled_pipelines_share_devices(self):
        schedule = chimera_schedule(_costs(4), 8)
        for device, tasks in enumerate(schedule.device_tasks):
            pipes = {t.key.pipe for t in tasks}
            assert pipes == {0, 1}
            stages = {(t.key.pipe, t.key.stage) for t in tasks}
            assert (0, device) in stages and (1, 4 - 1 - device) in stages

    def test_static_memory_doubles(self):
        schedule = chimera_schedule(_costs(4, static=5.0), 8)
        assert schedule.device_static_bytes == [10.0] * 4

    def test_task_count(self):
        schedule = chimera_schedule(_costs(4), 8)
        assert len(schedule.all_tasks()) == 2 * 2 * 4 * 4  # 2 pipes x 4 mbs x 4 stages x F/B

    def test_forward_doubling_halves_task_count_and_doubles_weight(self):
        plain = chimera_schedule(_costs(4), 8)
        doubled = chimera_schedule(_costs(4), 8, forward_doubling=True)
        assert len(doubled.all_tasks()) == len(plain.all_tasks()) // 2
        fwd = next(
            t for t in doubled.all_tasks() if t.key.kind == TaskKind.FORWARD
        )
        assert fwd.weight == 2
        assert fwd.activation_bytes == 2.0

    def test_forward_doubling_micro_batch_constraint(self):
        with pytest.raises(ConfigError):
            chimera_schedule(_costs(4), 6, forward_doubling=True)

    @given(
        half_p=st.integers(min_value=1, max_value=3),
        units=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_never_deadlocks(self, half_p, units):
        p = 2 * half_p
        n = p * units
        result = simulate(chimera_schedule(_costs(p), n))
        assert result.iteration_time > 0

    def test_middle_heavy_memory_profile(self):
        """Figure 8's Chimera-Non shape: middle stages store the most."""
        p, n = 8, 16
        result = simulate(chimera_schedule(_costs(p, static=0.0), n))
        peaks = result.device_peak_bytes
        middle = max(peaks[p // 2 - 1], peaks[p // 2])
        assert middle >= peaks[0] and middle >= peaks[-1]

    def test_worse_than_dapple_at_many_micro_batches(self):
        """Section 7.2: bubbles between units make Chimera lose at n >> p."""
        p, n = 4, 32
        dapple = simulate(one_f_one_b_schedule(_costs(p), n))
        chimera = simulate(chimera_schedule(_costs(p), n))
        assert chimera.iteration_time >= dapple.iteration_time * 0.98
