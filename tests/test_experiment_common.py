"""Tests for the experiment plumbing (result tables, method sweeps) and
the remaining chart renderers, using fabricated results for speed."""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.experiments.common import (
    ExperimentResult,
    MethodRow,
    fast_strategy_subset,
    speedup_over,
    sweep_method,
)
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b
from repro.report.render import render_experiment_svg


class TestExperimentResult:
    def test_render_aligns_columns(self):
        result = ExperimentResult(
            name="x", title="t", headers=["a", "long-header"],
        )
        result.add_row("11111", "2")
        result.add_row("3", "4")
        lines = result.render().splitlines()
        assert lines[1].index("long-header") == lines[3].index("2")

    def test_cells_are_stringified(self):
        result = ExperimentResult(name="x", title="t", headers=["a"])
        result.add_row((1, 2, 3))
        assert result.rows[0][0] == "(1, 2, 3)"

    def test_notes_rendered_last(self):
        result = ExperimentResult(name="x", title="t", headers=["a"])
        result.add_row("v")
        result.add_note("hello")
        assert result.render().splitlines()[-1] == "note: hello"


class TestMethodRow:
    def test_oom_cell(self):
        row = MethodRow("m", None, None)
        assert row.oom and row.cell() == "OOM"

    def test_speedup_over_picks_fastest_baseline(self):
        class FakeEval:
            def __init__(self, t):
                self._t = t

            @property
            def iteration_time(self):
                return self._t

        rows = {
            "AdaPipe": MethodRow("AdaPipe", FakeEval(50.0), None),
            "DAPPLE-Full": MethodRow("DAPPLE-Full", FakeEval(75.0), None),
            "DAPPLE-Non": MethodRow("DAPPLE-Non", FakeEval(60.0), None),
        }
        name, factor = speedup_over(rows, "AdaPipe", ("DAPPLE-Full", "DAPPLE-Non"))
        assert name == "DAPPLE-Non"
        assert factor == pytest.approx(1.2)

    def test_speedup_none_when_target_oom(self):
        rows = {"AdaPipe": MethodRow("AdaPipe", None, None)}
        assert speedup_over(rows, "AdaPipe", ("DAPPLE-Full",)) is None


class TestSweepHelpers:
    def test_sweep_method_reports_oom_when_all_strategies_fail(self, gpt3):
        train = TrainingConfig(sequence_length=16384, global_batch_size=8)
        row = sweep_method(
            "DAPPLE-Non",
            cluster_a(2),
            gpt3,
            train,
            16,
            strategies=[ParallelConfig(8, 2, 1)],
        )
        assert row.oom and row.strategy is None

    def test_fast_strategy_subset_prefers_p8(self):
        train = TrainingConfig(sequence_length=4096, global_batch_size=128)
        subset = fast_strategy_subset(cluster_a(), gpt3_175b(), train, 64)
        assert subset
        assert all(s.pipeline_parallel == 8 for s in subset)
        assert len(subset) <= 3


def _fabricated(name, headers, rows):
    result = ExperimentResult(name=name, title=name, headers=headers)
    for row in rows:
        result.add_row(*row)
    return result


class TestRemainingRenderers:
    def test_figure5_bars_render(self):
        result = _fabricated(
            "figure5",
            ["seq", "batch", "DAPPLE-Full", "AdaPipe", "AdaPipe speedup"],
            [
                ["4096", "128", "60.357s", "49.820s", "1.00x vs DAPPLE-Non"],
                ["16384", "32", "90.931s", "OOM", "n/a"],
            ],
        )
        svg = render_experiment_svg("figure5", result)
        assert svg is not None and "OOM" in svg and "<path" in svg

    def test_figure7_bars_render(self):
        result = _fabricated(
            "figure7",
            ["model", "#dev", "(t,p,d)", "DAPPLE-Full", "AdaPipe", "speedup"],
            [["llama2-70b", "128", "(4, 8, 4)", "47.558s", "41.135s", "1.16x"]],
        )
        svg = render_experiment_svg("figure7", result)
        assert svg is not None and "llama2-70b" in svg

    def test_table3_bars_render(self):
        result = _fabricated(
            "table3",
            ["(TP,PP,DP)", "DAPPLE-Full", "AdaPipe"],
            [["(8, 8, 1)", "75.349s", "63.154s"], ["(1, 32, 2)", "OOM", "103.138s"]],
        )
        svg = render_experiment_svg("table3", result)
        assert svg is not None and "OOM" in svg

    def test_figure9_lines_render(self):
        rows = [["AdaPipe"] + [f"{2.2 + i / 100:.3f}" for i in range(8)] + ["1.04x"]]
        result = _fabricated(
            "figure9", ["method"] + [f"stage{s}" for s in range(8)] + ["max/min"], rows
        )
        svg = render_experiment_svg("figure9", result)
        assert svg is not None and "polyline" in svg
