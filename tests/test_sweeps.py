"""Tests for the sweep harness and new model presets."""

import csv
import io

import pytest

from repro.config import ParallelConfig
from repro.experiments.sweeps import Sweep, best_per_method
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_13b, llama2_7b, llama2_13b, model_by_name


class TestNewPresets:
    def test_gpt3_13b_parameter_count(self):
        assert gpt3_13b().total_params() == pytest.approx(13e9, rel=0.05)

    def test_llama2_13b_parameter_count(self):
        assert llama2_13b().total_params() == pytest.approx(13e9, rel=0.05)

    def test_llama2_7b_parameter_count(self):
        assert llama2_7b().total_params() == pytest.approx(6.7e9, rel=0.05)

    def test_registry_has_all(self):
        for name in ("gpt3-13b", "llama2-13b", "llama2-7b"):
            assert model_by_name(name).name == name


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        sweep = Sweep(
            cluster=cluster_a(2),
            models=[gpt3_13b()],
            workloads=[(2048, 16)],
            methods=["DAPPLE-Full", "AdaPipe"],
            num_devices=16,
            strategies=[ParallelConfig(2, 8, 1), ParallelConfig(4, 4, 1)],
        )
        sweep.run()
        return sweep

    def test_point_count(self, sweep):
        assert len(sweep.points) == 1 * 1 * 2 * 2  # models x loads x strats x methods

    def test_adapipe_no_slower_than_dapple_full(self, sweep):
        best = best_per_method(sweep.points)
        ada = best[("gpt3-13b", 2048, "AdaPipe")]
        full = best[("gpt3-13b", 2048, "DAPPLE-Full")]
        assert ada.iteration_time <= full.iteration_time

    def test_csv_round_trips(self, sweep):
        rows = list(csv.DictReader(io.StringIO(sweep.to_csv())))
        assert len(rows) == len(sweep.points)
        first = rows[0]
        assert first["model"] == "gpt3-13b"
        assert first["method"] in ("DAPPLE-Full", "AdaPipe")
        assert float(first["peak_memory_gib"]) > 0

    def test_csv_written_to_disk(self, sweep, tmp_path):
        path = tmp_path / "sweep.csv"
        sweep.write_csv(str(path))
        assert path.read_text().startswith("model,method")

    def test_collector_conversion(self, sweep):
        collector = sweep.to_collector()
        assert len(collector.entries) == len(sweep.points)
        assert collector.speedup("gpt3-13b", 2048, "AdaPipe", "DAPPLE-Full") >= 1.0

    def test_oom_points_marked(self):
        from repro.model.spec import gpt3_175b

        sweep = Sweep(
            cluster=cluster_a(2),
            models=[gpt3_175b()],
            workloads=[(16384, 16)],
            methods=["DAPPLE-Non"],
            num_devices=16,
            strategies=[ParallelConfig(2, 8, 1)],
        )
        (point,) = sweep.run()
        assert point.oom and point.bubble_ratio is None
        row = next(csv.DictReader(io.StringIO(sweep.to_csv())))
        assert row["oom"] == "True" and row["iteration_time_s"] == ""


class TestMemoryTimeline:
    def test_render_memory_timeline(self):
        from repro.pipeline.schedules import one_f_one_b_schedule
        from repro.pipeline.simulator import simulate
        from repro.pipeline.tasks import StageCosts
        from repro.pipeline.visualize import render_memory_timeline

        costs = [
            StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
            for _ in range(3)
        ]
        text = render_memory_timeline(simulate(one_f_one_b_schedule(costs, 6)))
        lines = text.splitlines()
        assert len(lines) == 4  # header + one row per device
        assert "peak 3" in lines[0]
        # Stage 0 should show the fullest profile (block characters).
        assert "█" in lines[1]

    def test_empty_schedule(self):
        from repro.pipeline.simulator import simulate
        from repro.pipeline.tasks import Schedule
        from repro.pipeline.visualize import render_memory_timeline

        result = simulate(Schedule(name="x", num_devices=1, device_tasks=[[]]))
        assert "empty" in render_memory_timeline(result)
