"""Hypothesis property tests over the end-to-end planner.

Random small architectures and budgets; the invariants that must hold for
*every* input, not just the paper's configurations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import (
    PlannerContext,
    plan_adapipe,
    plan_even_partitioning,
    plan_policy,
)
from repro.core.strategies import RecomputePolicy
from repro.hardware.cluster import cluster_a
from repro.model.spec import ModelSpec


@st.composite
def planner_contexts(draw):
    hidden = draw(st.sampled_from([1024, 2048, 4096]))
    num_layers = draw(st.integers(min_value=4, max_value=12))
    spec = ModelSpec(
        name="hypo",
        hidden_size=hidden,
        num_layers=num_layers,
        num_heads=hidden // 128,
        num_kv_heads=hidden // 128,
        ffn_hidden_size=4 * hidden,
        vocab_size=32000,
        gated_ffn=draw(st.booleans()),
        linear_bias=draw(st.booleans()),
        rmsnorm=draw(st.booleans()),
    )
    p = draw(st.sampled_from([2, 4]))
    t = draw(st.sampled_from([1, 2, 4]))
    seq = draw(st.sampled_from([1024, 2048, 4096]))
    n = draw(st.integers(min_value=p, max_value=3 * p))
    train = TrainingConfig(sequence_length=seq, global_batch_size=n)
    margin = draw(st.floats(min_value=0.3, max_value=0.95))
    return PlannerContext(
        cluster_a(2), spec, train, ParallelConfig(t, p, 1), memory_margin=margin
    )


class TestPlannerInvariants:
    @given(ctx=planner_contexts())
    @settings(max_examples=25, deadline=None)
    def test_plans_cover_layers_and_respect_memory(self, ctx):
        plan = plan_adapipe(ctx)
        if not plan.feasible:
            return  # infeasible contexts are legal; nothing more to check
        assert plan.stages[0].layer_start == 0
        assert plan.stages[-1].layer_end == len(ctx.layers)
        cursor = 0
        for stage in plan.stages:
            assert stage.layer_start == cursor
            assert stage.num_layers >= 1
            cursor = stage.layer_end
            assert stage.memory.total_bytes <= ctx.capacity_bytes * 1.001

    @given(ctx=planner_contexts())
    @settings(max_examples=25, deadline=None)
    def test_adapipe_dominates_even_partitioning(self, ctx):
        """AdaPipe searches a superset of Even Partitioning's space, so its
        modelled objective can never be worse, and Even Partitioning can
        never be feasible where AdaPipe is not."""
        even = plan_even_partitioning(ctx)
        ada = plan_adapipe(ctx)
        if even.feasible:
            assert ada.feasible
            assert ada.modeled_iteration_time <= even.modeled_iteration_time + 1e-9

    @given(ctx=planner_contexts())
    @settings(max_examples=20, deadline=None)
    def test_adaptive_backward_never_exceeds_full_recompute(self, ctx):
        """Saving intermediates can only remove recompute work."""
        ada = plan_even_partitioning(ctx)
        full = plan_policy(ctx, RecomputePolicy.FULL, "full")
        if not ada.feasible:
            return
        for adaptive_stage, full_stage in zip(ada.stages, full.stages):
            assert adaptive_stage.backward_time <= full_stage.backward_time + 1e-12
            assert adaptive_stage.forward_time == pytest.approx(
                full_stage.forward_time
            )

    @given(ctx=planner_contexts())
    @settings(max_examples=20, deadline=None)
    def test_saved_bytes_monotone_along_pipeline_pressure(self, ctx):
        """Within one plan, a later stage's *memory pressure* (in-flight x
        saved bytes) never exceeds the budget a former stage had to obey."""
        plan = plan_even_partitioning(ctx)
        if not plan.feasible:
            return
        for stage in plan.stages:
            in_flight = stage.memory.in_flight_microbatches
            assert in_flight == ctx.parallel.pipeline_parallel - stage.stage
