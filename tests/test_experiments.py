"""Tests for the experiment harness: each artifact's key claims hold.

These are the repository's reproduction assertions — if one fails, the
corresponding paper claim no longer reproduces.
"""

import pytest

from repro.experiments import run_experiment
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.config import ConfigError


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "heterogeneous",
            "robustness",
            "table3",
            "table4",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigError):
            get_experiment("figure99")


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("figure1", fast=True)

    def test_has_six_rows(self, result):
        assert len(result.rows) == 6

    def test_no_recompute_memory_decreases_with_stage(self, result):
        for row in result.rows:
            if row[0].startswith("No"):
                values = [float(v) for v in row[2:]]
                assert values == sorted(values, reverse=True)

    def test_no_recompute_exceeds_limit_at_long_sequences(self, result):
        limit = 80.0
        by_seq = {row[1]: row for row in result.rows if row[0].startswith("No")}
        assert float(by_seq["16384"][2]) > limit  # stage 0 blows up
        assert float(by_seq["4096"][9]) < limit  # last stage always fits

    def test_full_recompute_stays_under_limit(self, result):
        for row in result.rows:
            if row[0].startswith("Full"):
                assert all(float(v) < 80.0 for v in row[2:])

    def test_memory_grows_with_sequence_length(self, result):
        no_rows = [row for row in result.rows if row[0].startswith("No")]
        stage0 = [float(row[2]) for row in no_rows]
        assert stage0 == sorted(stage0)


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("figure2", fast=True)

    def test_same_makespan(self, result):
        assert result.rows[0][1] == result.rows[1][1]

    def test_gpipe_pins_all_microbatches(self, result):
        gpipe = next(r for r in result.rows if r[0] == "GPipe")
        assert gpipe[3] == "[6, 6, 6]"

    def test_1f1b_pins_p_minus_s(self, result):
        onef = next(r for r in result.rows if "1F1B" in r[0])
        assert onef[3] == "[3, 2, 1]"


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("table4", fast=True)

    def test_saved_units_grow_along_pipeline(self, result):
        for row in result.rows:
            if row[1] == "Saved Units":
                values = [int(v) for v in row[2:]]
                # Monotone up to head-layer composition: the last stage
                # trades transformer units for the (smaller) head units.
                assert all(a <= b + 6 for a, b in zip(values, values[1:])), row[0]
                assert values[0] < values[4] < values[5] + 6
                assert values[0] * 1.4 < values[-1]

    def test_adapipe_shifts_layers_late(self, result):
        layers = next(
            [int(v) for v in row[2:]]
            for row in result.rows
            if row[0] == "AdaPipe" and row[1] == "# Layers"
        )
        # Later half of the pipeline holds at least as many layers.
        assert sum(layers[4:]) >= sum(layers[:4])

    def test_even_partitioning_layers_uniform(self, result):
        layers = next(
            [int(v) for v in row[2:]]
            for row in result.rows
            if row[0] == "Even Partitioning" and row[1] == "# Layers"
        )
        assert max(layers) - min(layers) <= 1


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("figure8", fast=True)

    def test_dapple_non_is_oom_and_imbalanced(self, result):
        row = next(r for r in result.rows if r[0] == "DAPPLE-Non")
        assert row[-1] == "OOM"
        stage0, stage7 = float(row[1]), float(row[8])
        assert stage0 / stage7 == pytest.approx(2.33, rel=0.15)  # paper: 2.33x

    def test_adaptive_methods_fit(self, result):
        for name in ("Even Partitioning", "AdaPipe"):
            row = next(r for r in result.rows if r[0] == name)
            assert row[-1] == "yes"
            assert all(float(v) <= 80.0 for v in row[1:9])


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("figure9", fast=True)

    def test_even_partitioning_decreases(self, result):
        row = next(r for r in result.rows if r[0] == "Even Partitioning")
        times = [float(v) for v in row[1:9]]
        assert times[0] > times[-1]

    def test_adapipe_flatter_than_even_partitioning(self, result):
        even = next(r for r in result.rows if r[0] == "Even Partitioning")
        ada = next(r for r in result.rows if r[0] == "AdaPipe")
        assert float(ada[-1][:-1]) <= float(even[-1][:-1])


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("figure10", fast=True)

    def test_loss_decreases(self, result):
        first = float(result.rows[0][1])
        last = float(result.rows[-1][1])
        assert last < first - 0.5

    def test_same_seed_plans_identical(self, result):
        gap_note = next(n for n in result.notes if "max |loss gap|" in n)
        assert "0.00e+00" in gap_note

    def test_curves_track_each_other(self, result):
        for row in result.rows:
            dapple, adapipe = float(row[1]), float(row[2])
            assert abs(dapple - adapipe) < 0.5


class TestCli:
    def test_list_and_run(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out and "table3" in out

        assert main(["run", "figure2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "GPipe" in out and "1F1B" in out

    def test_robustness_subcommand(self, capsys, tmp_path):
        from repro.experiments.cli import main

        svg = tmp_path / "crit.svg"
        code = main([
            "robustness", "--model", "bert-large", "--seq", "512",
            "--batch", "16", "--tp", "1", "--pp", "4", "--dp", "1",
            "--draws", "4", "--sigma", "0.05", "--device-factor", "2=1.5",
            "--svg", str(svg),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "device criticality" in out
        assert "most critical device: 2" in out
        assert svg.read_text().startswith("<svg")

    def test_plan_robust_objective_flag(self, capsys):
        from repro.experiments.cli import main

        code = main([
            "plan", "--model", "bert-large", "--seq", "512", "--batch", "16",
            "--tp", "1", "--pp", "2", "--dp", "2", "--robust-objective",
            "p95", "--robust-draws", "4", "--robust-sigma", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "robust objective p95 over 4 draws selects" in out


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("figure3", fast=True)

    def test_each_step_no_slower(self, result):
        times = [float(row[1][:-1]) for row in result.rows]
        assert times[1] < times[0]  # adaptive recomputation helps
        assert times[2] <= times[1] + 1e-9  # partitioning never hurts

    def test_opt1_leaves_stage0_bottleneck(self, result):
        opt1 = result.rows[1]
        assert float(opt1[2][:-1]) > float(opt1[3][:-1])

    def test_opt2_moves_layers_to_stage1(self, result):
        layers = eval(result.rows[2][5])
        assert layers[0] <= layers[1]

    def test_saved_units_lean_to_stage1(self, result):
        saved = eval(result.rows[1][4])
        assert saved[0] < saved[1]


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("figure4", fast=True)

    def test_covers_all_layer_kinds(self, result):
        kinds = {row[0] for row in result.rows}
        assert kinds == {"attention", "ffn", "embedding", "head"}

    def test_only_closing_gemms_always_saved(self, result):
        always = {row[1] for row in result.rows if row[5] == "always saved"}
        assert always == {"attn.out", "ffn.out"}

    def test_ffn_units_pin_most_memory(self, result):
        by_unit = {row[1]: float(row[4]) for row in result.rows}
        assert by_unit["ffn.in"] > by_unit["attn.q"]


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment("robustness", fast=True)

    def test_rows_cover_both_pinned_strategies(self, result):
        assert [row[0] for row in result.rows] == ["(1, 2, 2)", "(1, 4, 1)"]
        # The shallow pipeline leaves the criticality cells of the absent
        # ranks blank.
        assert result.rows[0][-1] == "" and result.rows[1][-1] != ""

    def test_p95_flips_the_plan_choice(self, result):
        notes = "\n".join(result.notes)
        assert "best by nominal: (1, 4, 1)" in notes
        assert "best by p95: (1, 2, 2)" in notes
        assert "flips the plan choice" in notes

    def test_derated_ranks_dominate_criticality(self, result):
        deep = result.rows[1]
        healthy = [float(deep[5]), float(deep[6])]
        derated = [float(deep[7]), float(deep[8])]
        assert min(derated) > max(healthy)

    def test_report_is_deterministic(self, result):
        again = run_experiment("robustness", fast=True)
        assert again.rows == result.rows
        assert again.notes == result.notes
