"""Tests for repro.config."""

import dataclasses

import pytest

from repro.config import ConfigError, ParallelConfig, TrainingConfig


class TestParallelConfig:
    def test_num_devices(self):
        assert ParallelConfig(8, 8, 1).num_devices == 64
        assert ParallelConfig(4, 8, 2).num_devices == 64
        assert ParallelConfig(1, 2, 1).num_devices == 2

    def test_as_tuple_matches_paper_order(self):
        assert ParallelConfig(2, 16, 2).as_tuple() == (2, 16, 2)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2"])
    def test_rejects_invalid_sizes(self, bad):
        with pytest.raises(ConfigError):
            ParallelConfig(bad, 1, 1)
        with pytest.raises(ConfigError):
            ParallelConfig(1, bad, 1)
        with pytest.raises(ConfigError):
            ParallelConfig(1, 1, bad)

    def test_is_hashable_and_frozen(self):
        config = ParallelConfig(2, 2, 2)
        assert hash(config) == hash(ParallelConfig(2, 2, 2))
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.tensor_parallel = 4

    def test_str_is_readable(self):
        assert "t=4" in str(ParallelConfig(4, 8, 2))


class TestTrainingConfig:
    def test_micro_batches_per_pipeline(self):
        train = TrainingConfig(sequence_length=4096, global_batch_size=128)
        assert train.num_micro_batches(ParallelConfig(8, 8, 1)) == 128
        assert train.num_micro_batches(ParallelConfig(4, 8, 2)) == 64

    def test_micro_batches_with_larger_micro_batch_size(self):
        train = TrainingConfig(
            sequence_length=128, global_batch_size=32, micro_batch_size=4
        )
        assert train.num_micro_batches(ParallelConfig(1, 2, 1)) == 8

    def test_indivisible_data_parallel_rejected(self):
        train = TrainingConfig(sequence_length=128, global_batch_size=10)
        with pytest.raises(ConfigError):
            train.num_micro_batches(ParallelConfig(1, 2, 4))

    def test_indivisible_micro_batch_rejected(self):
        train = TrainingConfig(
            sequence_length=128, global_batch_size=10, micro_batch_size=4
        )
        with pytest.raises(ConfigError):
            train.num_micro_batches(ParallelConfig(1, 2, 1))

    def test_tokens_per_iteration(self):
        train = TrainingConfig(sequence_length=4096, global_batch_size=128)
        assert train.tokens_per_iteration() == 4096 * 128

    def test_sequence_rescaling_keeps_tokens_constant(self):
        train = TrainingConfig(sequence_length=4096, global_batch_size=128)
        for seq in (8192, 16384):
            scaled = train.with_sequence_length(seq)
            assert scaled.tokens_per_iteration() == train.tokens_per_iteration()
        assert train.with_sequence_length(8192).global_batch_size == 64

    def test_sequence_rescaling_rejects_non_divisible(self):
        train = TrainingConfig(sequence_length=4096, global_batch_size=1)
        with pytest.raises(ConfigError):
            train.with_sequence_length(8192)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sequence_length": 0, "global_batch_size": 1},
            {"sequence_length": 8, "global_batch_size": 0},
            {"sequence_length": 8, "global_batch_size": 1, "micro_batch_size": 0},
            {"sequence_length": 8, "global_batch_size": 1, "bytes_per_value": 3},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ConfigError):
            TrainingConfig(**kwargs)

    def test_defaults_match_paper_setup(self):
        train = TrainingConfig(sequence_length=4096, global_batch_size=128)
        assert train.micro_batch_size == 1  # paper fixes b = 1
        assert train.sequence_parallel and train.flash_attention
        assert train.bytes_per_value == 2  # fp16/bf16
        assert train.optimizer_state_factor == 8  # FP32 Adam, two moments
