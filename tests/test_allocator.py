"""Tests for the arena allocator and the recompute-buffer bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ParallelConfig, TrainingConfig
from repro.model.layers import LayerKind
from repro.pipeline.allocator import (
    AllocationError,
    ArenaAllocator,
    replay_recompute_backward,
)
from repro.profiler.memory import MemoryModel
from repro.profiler.profiler import Profiler
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b


class TestArenaAllocator:
    def test_alloc_free_roundtrip(self):
        arena = ArenaAllocator()
        block = arena.alloc(1000)
        assert arena.live_bytes > 0
        arena.free(block)
        assert arena.live_bytes == 0

    def test_double_free_rejected(self):
        arena = ArenaAllocator()
        block = arena.alloc(100)
        arena.free(block)
        with pytest.raises(AllocationError):
            arena.free(block)

    def test_reuses_freed_space(self):
        arena = ArenaAllocator(alignment=1)
        a = arena.alloc(1000)
        arena.free(a)
        arena.alloc(1000)
        assert arena.high_water == 1000  # no growth on reuse

    def test_first_fit_fragmentation_visible(self):
        arena = ArenaAllocator(alignment=1)
        a = arena.alloc(100)
        b = arena.alloc(100)
        arena.free(a)
        # A 150-byte block cannot use the 100-byte hole: arena grows.
        arena.alloc(150)
        assert arena.high_water == 350
        del b

    def test_coalescing_merges_neighbours(self):
        arena = ArenaAllocator(alignment=1)
        a = arena.alloc(100)
        b = arena.alloc(100)
        arena.free(a)
        arena.free(b)
        c = arena.alloc(200)  # fits the coalesced hole
        assert arena.high_water == 200
        del c

    def test_alignment_rounds_up(self):
        arena = ArenaAllocator(alignment=256)
        arena.alloc(1)
        assert arena.high_water == 256

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_lifo_free_never_fragments(self, sizes):
        """Stack-discipline alloc/free keeps high-water == peak live."""
        arena = ArenaAllocator(alignment=1)
        blocks = [arena.alloc(size) for size in sizes]
        peak = arena.live_bytes
        for block in reversed(blocks):
            arena.free(block)
        assert arena.high_water == peak
        assert arena.live_bytes == 0


class TestRecomputeBufferBound:
    def test_model_bound_holds_on_gpt3_layers(self):
        """The Section 4.2 claim: with Att/FFN outputs always saved, the
        backward re-materialisation buffer never exceeds one decoder
        layer's intermediates — empirically, on a real allocator replay."""
        spec = gpt3_175b()
        train = TrainingConfig(sequence_length=4096, global_batch_size=8)
        parallel = ParallelConfig(8, 8, 1)
        profiler = Profiler(cluster_a(), spec, train, parallel)
        memory_model = MemoryModel(spec, train, parallel)

        per_layer = []
        for _ in range(12):  # one stage's worth of decoder blocks
            for kind in (LayerKind.ATTENTION, LayerKind.FFN):
                profile = profiler.profile_layer(kind)
                per_layer.append(
                    [u.saved_bytes for u in profile.units if not u.always_saved]
                )
        arena = replay_recompute_backward(per_layer)
        bound = memory_model.recompute_buffer_bytes()
        # One att + one ffn layer bound, with <1% alignment slack.
        assert arena.high_water <= bound * 1.01

    def test_replay_frees_everything(self):
        arena = replay_recompute_backward([[100, 200], [300], [50, 60, 70]])
        assert arena.live_bytes == 0
        assert arena.high_water > 0

    def test_buffer_scales_with_layer_size(self):
        small = replay_recompute_backward([[100] * 4] * 8)
        large = replay_recompute_backward([[1000] * 4] * 8)
        assert large.high_water > small.high_water

    def test_buffer_independent_of_layer_count(self):
        """The bound is per-layer, not per-stage: more layers, same buffer."""
        few = replay_recompute_backward([[512] * 4] * 2)
        many = replay_recompute_backward([[512] * 4] * 32)
        assert few.high_water == many.high_water
