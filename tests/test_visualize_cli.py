"""Tests for the ASCII timeline renderer and the plan/list CLI paths."""

import json

import pytest

from repro.experiments.cli import main
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts
from repro.pipeline.visualize import render_timeline


class TestRenderTimeline:
    @pytest.fixture
    def result(self):
        costs = [StageCosts(forward=1.0, backward=2.0) for _ in range(3)]
        return simulate(one_f_one_b_schedule(costs, 4))

    def test_one_row_per_device(self, result):
        lines = render_timeline(result).splitlines()
        device_rows = [line for line in lines if line.startswith("dev")]
        assert len(device_rows) == 3

    def test_header_reports_time_and_bubbles(self, result):
        header = render_timeline(result).splitlines()[0]
        assert "1F1B" in header and "bubble" in header

    def test_contains_forward_and_backward_marks(self, result):
        text = render_timeline(result)
        assert "#" in text  # backward
        assert any(d in text for d in "0123")  # forward micro-batch digits

    def test_width_is_respected(self, result):
        lines = render_timeline(result, width=50).splitlines()
        for line in lines:
            if line.startswith("dev"):
                assert len(line) <= 50 + 10  # prefix + padding

    def test_empty_schedule(self):
        from repro.pipeline.tasks import Schedule

        empty = simulate(Schedule(name="x", num_devices=1, device_tasks=[[]]))
        assert "empty" in render_timeline(empty)


class TestPlanCli:
    def test_plan_with_explicit_strategy(self, capsys, tmp_path):
        out = tmp_path / "plan.json"
        code = main(
            [
                "plan",
                "--model", "llama2-70b",
                "--devices", "32",
                "--seq", "4096",
                "--batch", "32",
                "--tp", "4", "--pp", "8", "--dp", "1",
                "--output", str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "best strategy" in captured
        assert "simulated iteration time" in captured
        document = json.loads(out.read_text())
        assert document["method"] == "AdaPipe"
        assert len(document["stages"]) == 8

    def test_plan_rejects_partial_strategy(self, capsys):
        code = main(["plan", "--tp", "4"])
        assert code == 2
        assert "together" in capsys.readouterr().err

    def test_plan_reports_all_oom(self, capsys):
        code = main(
            [
                "plan",
                "--model", "gpt3-175b",
                "--devices", "16",
                "--seq", "16384",
                "--batch", "16",
                "--tp", "8", "--pp", "2", "--dp", "1",
            ]
        )
        assert code == 1
        assert "OOM" in capsys.readouterr().out

    def test_list_shows_methods(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "AdaPipe" in out and "Chimera-Full" in out
