"""Differential tests for elastic warm-start replanning.

The soundness argument being pinned: stage evaluations are keyed by a
content digest covering everything they depend on — including the rank's
device class ``(compute_scale, capacity)`` — while the evaluator
fingerprint excludes fleet *shape*. So a warm replan on a changed pool
must (a) select a plan bit-identical to a cold sweep on that pool, (b)
answer a large share of its stage-eval demand from the surviving cache,
and (c) never reuse an entry priced under a device class that no longer
exists (the drift regression).
"""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import (
    StageEvalCache,
    StageEvaluator,
    evaluator_fingerprint,
)
from repro.core.replan import (
    pool_with_drift,
    pool_with_rank,
    pool_without_rank,
    replan,
)
from repro.core.search import PlannerContext
from repro.core.serialize import plan_signature
from repro.core.sweep import SweepConfig, run_sweep
from repro.hardware.cluster import cluster_a
from repro.hardware.device import a100_80gb, derated
from repro.model.spec import tiny_gpt

LIMIT = 8 * 1024**2


@pytest.fixture
def pooled(tiny_spec, tiny_train):
    """A cold-searched 3-rank pool (nominal, derated 1.3x, nominal)."""
    base = a100_80gb()
    cluster = cluster_a(1).with_device_pool(
        (base, derated(base, 1.3), base)
    )
    cache = StageEvalCache()
    cold = run_sweep(
        cluster,
        tiny_spec,
        tiny_train,
        3,
        config=SweepConfig(workers=1),
        eval_cache=cache,
        memory_limit_bytes=LIMIT,
    )
    assert cold.best is not None
    return cluster, cold, cache, tiny_spec, tiny_train


def _cold(cluster, spec, train, num_devices):
    return run_sweep(
        cluster,
        spec,
        train,
        num_devices,
        config=SweepConfig(workers=1),
        eval_cache=StageEvalCache(),
        memory_limit_bytes=LIMIT,
    )


class TestElasticDifferential:
    """Warm replan == cold sweep on the changed pool, with real reuse."""

    def test_device_leave_matches_cold_sweep(self, pooled):
        cluster, cold, cache, spec, train = pooled
        shrunken = pool_without_rank(cluster, 1)
        warm = replan(
            cold.best, shrunken, spec, eval_cache=cache,
            memory_limit_bytes=LIMIT,
        )
        reference = _cold(shrunken, spec, train, 2)
        # Bit-identical on the deterministic selection key and the full
        # serialized plan (stage boundaries, recompute sets, times).
        assert warm.best.modeled_iteration_time == (
            reference.best.modeled_iteration_time
        )
        assert plan_signature(warm.best) == plan_signature(reference.best)
        assert warm.evals_reused > 0
        assert warm.evals_recomputed < 0.5 * reference.stats.inner_dp_invocations

    def test_device_join_matches_cold_sweep(self, pooled):
        cluster, cold, cache, spec, train = pooled
        grown = pool_with_rank(cluster, a100_80gb())
        warm = replan(
            cold.best, grown, spec, eval_cache=cache,
            memory_limit_bytes=LIMIT,
        )
        reference = _cold(grown, spec, train, 4)
        assert plan_signature(warm.best) == plan_signature(reference.best)
        assert warm.evals_reused > 0
        assert warm.evals_recomputed < reference.stats.inner_dp_invocations

    def test_drift_matches_cold_sweep(self, pooled):
        cluster, cold, cache, spec, train = pooled
        drifted = pool_with_drift(cluster, 1, 1.7)
        warm = replan(
            cold.best, drifted, spec, eval_cache=cache,
            memory_limit_bytes=LIMIT,
        )
        reference = _cold(drifted, spec, train, 3)
        assert plan_signature(warm.best) == plan_signature(reference.best)
        # Entries under surviving nominal ranks still hit...
        assert warm.evals_reused > 0
        # ...but the drifted rank's demand was genuinely re-run.
        assert warm.evals_recomputed > 0

    def test_hit_counters_track_reuse(self, pooled):
        cluster, cold, cache, spec, train = pooled
        hits_before = cache.hits
        warm = replan(
            cold.best, pool_without_rank(cluster, 1), spec,
            eval_cache=cache, memory_limit_bytes=LIMIT,
        )
        assert cache.hits - hits_before == warm.evals_reused
        assert warm.reuse_rate == warm.evals_reused / (
            warm.evals_reused + warm.evals_recomputed
        )


class TestDriftRegression:
    """Entries keyed under the old slowdown must miss after drift."""

    def test_stale_scale_never_reused(self, tiny_spec, tiny_train):
        ctx = PlannerContext(
            cluster_a(1),
            tiny_spec,
            tiny_train,
            ParallelConfig(1, 2, 1),
            memory_limit_bytes=LIMIT,
        )
        shared = StageEvalCache()
        capacity = float(a100_80gb().usable_memory_bytes)
        old = StageEvaluator(
            ctx.profiler, ctx.layers, ctx.capacity_bytes,
            shared_cache=shared,
            rank_compute_scales=(1.3, 1.3),
            rank_capacities=(capacity, capacity),
        )
        stale = old.evaluate(0, 0, 2)
        drifted = StageEvaluator(
            ctx.profiler, ctx.layers, ctx.capacity_bytes,
            shared_cache=shared,
            rank_compute_scales=(1.6, 1.6),
            rank_capacities=(capacity, capacity),
        )
        fresh = drifted.evaluate(0, 0, 2)
        # The drifted class changes the digest key: no hit, a real re-run,
        # and times scaled by the new slowdown rather than the stale one.
        assert drifted.inner_dp_invocations == 1
        assert drifted.cache_hits == 0
        assert fresh.forward != stale.forward
        assert fresh.forward == pytest.approx(stale.forward / 1.3 * 1.6)
        # Same class, same key: a second evaluator at 1.3 reuses verbatim.
        again = StageEvaluator(
            ctx.profiler, ctx.layers, ctx.capacity_bytes,
            shared_cache=shared,
            rank_compute_scales=(1.3, 1.3),
            rank_capacities=(capacity, capacity),
        )
        assert again.evaluate(0, 0, 2) is stale
        assert again.inner_dp_invocations == 0

    def test_drifted_pool_changes_device_class(self):
        base = a100_80gb()
        cluster = cluster_a(1).with_device_pool((base, derated(base, 1.3)))
        drifted = pool_with_drift(cluster, 1, 1.6)
        assert drifted.device_pool[1].slowdown == 1.6
        assert drifted.device_pool[1].name == f"{base.name}*1.6"
        assert cluster.rank_compute_factor(1) != drifted.rank_compute_factor(1)
        # Drifting back to nominal restores the base part exactly.
        restored = pool_with_drift(drifted, 1, 1.0)
        assert restored.device_pool[1] == base


class TestFingerprintElasticity:
    """The evaluator fingerprint ignores fleet shape, not pricing inputs."""

    def _fingerprint(self, cluster, tiny_spec, tiny_train):
        ctx = PlannerContext(
            cluster,
            tiny_spec,
            tiny_train,
            ParallelConfig(1, 2, 1),
            memory_limit_bytes=LIMIT,
        )
        return evaluator_fingerprint(ctx.profiler, ctx.capacity_bytes)

    def test_fleet_shape_is_invisible(self, tiny_spec, tiny_train):
        base = self._fingerprint(cluster_a(1), tiny_spec, tiny_train)
        grown = self._fingerprint(cluster_a(4), tiny_spec, tiny_train)
        pooled = self._fingerprint(
            cluster_a(1).with_device_pool(
                (a100_80gb(), derated(a100_80gb(), 1.3))
            ),
            tiny_spec,
            tiny_train,
        )
        assert base == grown == pooled

    def test_device_change_breaks_fingerprint(self, tiny_spec, tiny_train):
        import dataclasses

        base = cluster_a(1)
        slower = dataclasses.replace(
            base, device=derated(base.device, 1.5)
        )
        assert self._fingerprint(
            base, tiny_spec, tiny_train
        ) != self._fingerprint(slower, tiny_spec, tiny_train)
