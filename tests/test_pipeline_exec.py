"""Tests for the real 1F1B pipeline executor.

The load-bearing property: executing any pipeline plan — arbitrary stage
partition, arbitrary per-stage recomputation — produces the same loss and
(up to float accumulation order) the same gradients as the monolithic
reference. Plus 1F1B's memory signature on *real* retained tensors.
"""

import numpy as np
import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext, plan_adapipe, plan_policy
from repro.core.strategies import RecomputePolicy
from repro.hardware.cluster import cluster_a
from repro.model.spec import tiny_gpt, tiny_llama
from repro.training.data import SyntheticTextDataset
from repro.training.modules import build_model
from repro.training.optimizer import Adam
from repro.training.pipeline_exec import (
    PipelineExecutor,
    saved_units_per_layer,
    train_reference,
    train_with_plan,
)

GRAD_TOL = 1e-12


def _context(spec, pipeline_parallel=2, micro_batches=4, seq=8, limit_mib=8):
    train = TrainingConfig(
        sequence_length=seq,
        global_batch_size=micro_batches,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    return PlannerContext(
        cluster_a(1),
        spec,
        train,
        ParallelConfig(1, pipeline_parallel, 1),
        memory_limit_bytes=limit_mib * 1024**2,
    )


def _batch(spec, rows, seq=8, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, spec.vocab_size, size=(rows, seq)),
        rng.integers(0, spec.vocab_size, size=(rows, seq)),
    )


def _max_grad_gap(model_a, model_b):
    gaps = []
    for (na, pa), (nb, pb) in zip(
        model_a.named_parameters(), model_b.named_parameters()
    ):
        assert na == nb
        if pa.grad is None:
            assert pb.grad is None
            continue
        gaps.append(np.abs(pa.grad - pb.grad).max())
    return max(gaps)


class TestGradientEquivalence:
    @pytest.mark.parametrize("spec_fn,p", [(tiny_gpt, 2), (tiny_llama, 2), (tiny_gpt, 3)])
    def test_adapipe_plan_matches_reference(self, spec_fn, p):
        spec = spec_fn(num_layers=3, hidden_size=32, vocab_size=40)
        ctx = _context(spec, pipeline_parallel=p)
        plan = plan_adapipe(ctx)
        tokens, targets = _batch(spec, 4)

        reference = build_model(spec, seed=11)
        ref_loss = reference.loss_and_grad(tokens, targets)

        pipelined = build_model(spec, seed=11)
        stats = PipelineExecutor(pipelined, plan).train_step(tokens, targets)

        assert stats.loss == pytest.approx(ref_loss, abs=1e-12)
        assert _max_grad_gap(reference, pipelined) < GRAD_TOL

    def test_full_recompute_plan_matches_reference(self):
        spec = tiny_gpt(num_layers=3, hidden_size=32, vocab_size=40)
        ctx = _context(spec)
        plan = plan_policy(ctx, RecomputePolicy.FULL, "DAPPLE-Full")
        tokens, targets = _batch(spec, 4, seed=2)

        reference = build_model(spec, seed=3)
        ref_loss = reference.loss_and_grad(tokens, targets)
        pipelined = build_model(spec, seed=3)
        stats = PipelineExecutor(pipelined, plan).train_step(tokens, targets)
        assert stats.loss == pytest.approx(ref_loss, abs=1e-12)
        assert _max_grad_gap(reference, pipelined) < GRAD_TOL

    def test_two_plans_same_seed_train_identically(self):
        """The Figure 10 claim, stronger than the paper: identical losses."""
        spec = tiny_llama(num_layers=2, hidden_size=32, vocab_size=40)
        ctx = _context(spec)
        full = plan_policy(ctx, RecomputePolicy.FULL, "DAPPLE-Full")
        ada = plan_adapipe(ctx)
        dataset = SyntheticTextDataset(vocab_size=40)

        def run(plan):
            model = build_model(spec, seed=5)
            optimizer = Adam(model.named_parameters(), lr=1e-3)
            return train_with_plan(
                model, plan, dataset.batches(4, 8, 10), optimizer
            )

        assert run(full) == run(ada)

    def test_pipelined_training_matches_monolithic_training(self):
        spec = tiny_gpt(num_layers=2, hidden_size=32, vocab_size=40)
        ctx = _context(spec)
        plan = plan_adapipe(ctx)
        dataset = SyntheticTextDataset(vocab_size=40)

        mono = build_model(spec, seed=6)
        mono_losses = train_reference(
            mono, dataset.batches(4, 8, 5), Adam(mono.named_parameters(), lr=1e-3)
        )
        piped = build_model(spec, seed=6)
        piped_losses = train_with_plan(
            piped, plan, dataset.batches(4, 8, 5), Adam(piped.named_parameters(), lr=1e-3)
        )
        assert mono_losses == pytest.approx(piped_losses, abs=1e-9)


class TestMemoryBehaviour:
    def test_stage0_retains_more_context_bytes(self):
        """1F1B's p - s in-flight signature on actually-retained arrays."""
        spec = tiny_gpt(num_layers=4, hidden_size=32, vocab_size=40)
        ctx = _context(spec, pipeline_parallel=2, micro_batches=6, limit_mib=512)
        plan = plan_policy(ctx, RecomputePolicy.NONE, "DAPPLE-Non")
        model = build_model(spec, seed=1)
        stats = PipelineExecutor(model, plan).train_step(*_batch(spec, 6))
        assert stats.peak_context_bytes[0] > stats.peak_context_bytes[1]

    def test_recompute_plan_retains_fewer_bytes(self):
        spec = tiny_gpt(num_layers=4, hidden_size=32, vocab_size=40)
        ctx = _context(spec, micro_batches=4, limit_mib=512)
        full = plan_policy(ctx, RecomputePolicy.FULL, "DAPPLE-Full")
        none = plan_policy(ctx, RecomputePolicy.NONE, "DAPPLE-Non")
        tokens, targets = _batch(spec, 4)
        stats_full = PipelineExecutor(build_model(spec, seed=1), full).train_step(
            tokens, targets
        )
        stats_none = PipelineExecutor(build_model(spec, seed=1), none).train_step(
            tokens, targets
        )
        assert sum(stats_full.peak_context_bytes) < sum(stats_none.peak_context_bytes)

    def test_task_count(self):
        spec = tiny_gpt(num_layers=2, hidden_size=32, vocab_size=40)
        ctx = _context(spec, micro_batches=4)
        plan = plan_adapipe(ctx)
        stats = PipelineExecutor(build_model(spec, seed=1), plan).train_step(
            *_batch(spec, 4)
        )
        assert stats.tasks_executed == 2 * 2 * 4  # p stages x F/B x n


class TestPlanExpansion:
    def test_saved_units_assigned_to_matching_layers(self):
        spec = tiny_gpt(num_layers=3, hidden_size=32, vocab_size=40)
        ctx = _context(spec, limit_mib=512)
        plan = plan_policy(ctx, RecomputePolicy.NONE, "DAPPLE-Non")
        model = build_model(spec, seed=0)
        per_layer = saved_units_per_layer(model, plan)
        for index, saved in enumerate(per_layer):
            layer_units = set(model.layers[index].unit_names)
            assert saved <= layer_units

    def test_counts_preserved(self):
        spec = tiny_gpt(num_layers=3, hidden_size=32, vocab_size=40)
        ctx = _context(spec)
        plan = plan_adapipe(ctx)
        model = build_model(spec, seed=0)
        per_layer = saved_units_per_layer(model, plan)
        for stage in plan.stages:
            for unit, count in stage.saved_unit_counts.items():
                assigned = sum(
                    unit in per_layer[i]
                    for i in range(stage.layer_start, stage.layer_end)
                )
                assert assigned == min(
                    count,
                    sum(
                        unit in model.layers[i].unit_names
                        for i in range(stage.layer_start, stage.layer_end)
                    ),
                )

    def test_rejects_mismatched_batch(self):
        spec = tiny_gpt(num_layers=2, hidden_size=32, vocab_size=40)
        ctx = _context(spec, micro_batches=4)
        plan = plan_adapipe(ctx)
        executor = PipelineExecutor(build_model(spec, seed=0), plan)
        tokens, targets = _batch(spec, 3)
        with pytest.raises(ValueError, match="micro-batches"):
            executor.train_step(tokens, targets)

    def test_rejects_mismatched_model(self):
        spec = tiny_gpt(num_layers=2, hidden_size=32, vocab_size=40)
        other = tiny_gpt(num_layers=4, hidden_size=32, vocab_size=40)
        ctx = _context(spec)
        plan = plan_adapipe(ctx)
        with pytest.raises(ValueError, match="layers"):
            PipelineExecutor(build_model(other, seed=0), plan)
