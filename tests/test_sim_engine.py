"""Compiled engine vs reference oracle: bit-identical equivalence + cache.

The compiled ready-queue engine must reproduce the reference polling
engine's floats exactly — not approximately — on every schedule kind the
generators emit (see the longest-path argument in simulator.py's module
docstring). These tests drive both engines over randomized costs with
nonzero hop times and compare with ``==``.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pipeline.perturb import (
    LinkDegradation,
    PerturbationSpec,
    TransientStall,
    perturb_schedule,
)
from repro.pipeline.schedules import (
    chimera_schedule,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_2bp,
    one_f_one_b_overlapped,
    one_f_one_b_schedule,
)
from repro.pipeline.simulator import (
    SimulationCache,
    SimulationError,
    schedule_digest,
    simulate,
    simulate_with_info,
)
from repro.pipeline.tasks import Schedule, StageCosts, Task, TaskKey, TaskKind


def _random_costs(rng, p):
    return [
        StageCosts(
            forward=rng.uniform(0.5, 3.0),
            backward=rng.uniform(0.5, 5.0),
            activation_bytes=rng.choice([0.0, rng.uniform(1.0, 16.0)]),
            static_bytes=rng.uniform(0.0, 64.0),
            buffer_bytes=rng.uniform(0.0, 4.0),
        )
        for _ in range(p)
    ]


def _builders(rng, p, n):
    hop = rng.uniform(0.01, 0.5)
    schedules = {
        "1f1b": one_f_one_b_schedule(_random_costs(rng, p), n, hop_time=hop),
        "gpipe": gpipe_schedule(_random_costs(rng, p), n, hop_time=hop),
        "chimera": chimera_schedule(_random_costs(rng, p), n, hop_time=hop),
        "chimerad": chimera_schedule(
            _random_costs(rng, p), n, hop_time=hop, forward_doubling=True
        ),
        "interleaved": interleaved_1f1b_schedule(
            _random_costs(rng, 2 * p), n, p, hop_time=hop
        ),
    }
    # New families appended after the dict literal so the earlier kinds'
    # rng streams (and therefore their pinned fuzz schedules) stay
    # unchanged. Recompute times are pinned at a nonzero fraction of each
    # backward so the overlap machinery is always exercised (the default
    # clamp can degenerate to plain 1F1B on random costs).
    schedules["2bp"] = one_f_one_b_2bp(_random_costs(rng, p), n, hop_time=hop)
    overlap_costs = _random_costs(rng, p)
    schedules["overlap"] = one_f_one_b_overlapped(
        overlap_costs,
        n,
        hop_time=hop,
        recompute_times=[0.25 * c.backward for c in overlap_costs],
    )
    fused_costs = _random_costs(rng, p)
    schedules["overlap-fused"] = one_f_one_b_overlapped(
        fused_costs,
        n,
        hop_time=hop,
        recompute_times=[0.25 * c.backward for c in fused_costs],
        fused=True,
    )
    return schedules


def _assert_identical(reference, compiled):
    """Exact equality — the engines must agree bit-for-bit, not approx."""
    assert compiled.iteration_time == reference.iteration_time
    assert compiled.start_times == reference.start_times
    assert compiled.end_times == reference.end_times
    assert compiled.device_busy_time == reference.device_busy_time
    assert compiled.device_peak_bytes == reference.device_peak_bytes
    assert (
        compiled.device_micro_batch_passes
        == reference.device_micro_batch_passes
    )


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "kind",
        [
            "1f1b",
            "gpipe",
            "chimera",
            "chimerad",
            "interleaved",
            "2bp",
            "overlap",
            "overlap-fused",
        ],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_on_randomized_costs(self, kind, seed):
        rng = random.Random(1000 * seed + 7)
        p, n = rng.choice([(2, 4), (4, 8), (4, 16)])
        schedule = _builders(rng, p, n)[kind]
        reference = simulate(schedule, engine="reference", cache=False)
        compiled = simulate(schedule, engine="compiled", cache=False)
        _assert_identical(reference, compiled)

    def test_chimerad_weighted_passes_match_chimera(self):
        # ChimeraD halves the forward count but doubles each one's weight,
        # so the weighted useful work equals plain Chimera's.
        costs = [StageCosts(forward=1.0, backward=2.0) for _ in range(4)]
        plain = simulate(chimera_schedule(costs, 8), cache=False)
        doubled = simulate(
            chimera_schedule(costs, 8, forward_doubling=True), cache=False
        )
        assert doubled.device_micro_batch_passes == plain.device_micro_batch_passes
        assert doubled.micro_batch_passes == plain.micro_batch_passes

    def test_free_before_alloc_tie_break(self):
        # One stage, two micro-batches, F=1 B=2: mb1's forward starts at
        # t=3.0, the instant mb0's backward frees its activation. The free
        # must apply first, keeping the peak at exactly one activation.
        costs = [StageCosts(forward=1.0, backward=2.0, activation_bytes=5.0)]
        schedule = one_f_one_b_schedule(costs, 2)
        for engine in ("compiled", "reference"):
            result = simulate(schedule, engine=engine, cache=False)
            assert result.device_peak_bytes == [5.0]

    def test_env_flag_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        costs = [StageCosts(forward=1.0, backward=2.0)]
        _, info = simulate_with_info(
            one_f_one_b_schedule(costs, 2), cache=False
        )
        assert info["engine"] == "reference"

    def test_unknown_engine_rejected(self):
        costs = [StageCosts(forward=1.0, backward=2.0)]
        with pytest.raises(ValueError, match="unknown simulator engine"):
            simulate(one_f_one_b_schedule(costs, 2), engine="magic")


_FUZZ_KINDS = (
    "1f1b",
    "gpipe",
    "chimera",
    "chimerad",
    "interleaved",
    "2bp",
    "overlap",
    "overlap-fused",
)
_FUZZ_DEVICES = 4
_FUZZ_SCHEDULES = {}


def _fuzz_schedule(kind):
    if kind not in _FUZZ_SCHEDULES:
        # One fixed base schedule per kind; the fuzzing happens in the
        # drawn PerturbationSpec, not in the schedule itself.
        _FUZZ_SCHEDULES[kind] = _builders(
            random.Random(0xADA), _FUZZ_DEVICES, 8
        )[kind]
    return _FUZZ_SCHEDULES[kind]


def _finite(low, high):
    return st.floats(
        min_value=low, max_value=high, allow_nan=False, allow_infinity=False
    )


_SPEC_STRATEGY = st.builds(
    PerturbationSpec.build,
    device_factors=st.dictionaries(
        st.integers(0, _FUZZ_DEVICES - 1), _finite(0.25, 4.0),
        max_size=_FUZZ_DEVICES,
    ),
    jitter_sigma=st.sampled_from([0.0, 0.01, 0.1, 0.5]),
    seed=st.integers(0, 2**16),
    stalls=st.lists(
        st.builds(
            TransientStall,
            device=st.integers(0, _FUZZ_DEVICES - 1),
            delay=_finite(0.0, 5.0),
            first_task=st.integers(0, 8),
            length=st.integers(1, 4),
        ),
        max_size=2,
    ),
    links=st.lists(
        st.builds(
            LinkDegradation,
            src=st.integers(0, _FUZZ_DEVICES - 1),
            dst=st.integers(0, _FUZZ_DEVICES - 1),
            factor=_finite(0.0, 8.0),
            added_latency=_finite(0.0, 1.0),
        ),
        max_size=3,
    ),
)


def _content_changed(schedule, perturbed):
    if perturbed is schedule:
        return False
    for old, new in zip(schedule.device_tasks, perturbed.device_tasks):
        if any(a.duration != b.duration for a, b in zip(old, new)):
            return True
    return (perturbed.link_hops or {}) != (schedule.link_hops or {})


class TestPerturbationFuzz:
    """Differential fuzz: 40 drawn PerturbationSpecs per schedule kind
    (200 total) must keep the engines bit-identical on the perturbed
    schedule and keep the digest cache sound (any content change moves
    the digest; identity specs return the schedule object itself)."""

    @pytest.mark.parametrize("kind", _FUZZ_KINDS)
    @given(spec=_SPEC_STRATEGY)
    @settings(
        max_examples=40,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bit_identical_under_drawn_perturbations(self, kind, spec):
        schedule = _fuzz_schedule(kind)
        perturbed = perturb_schedule(schedule, spec)
        reference = simulate(perturbed, engine="reference", cache=False)
        compiled = simulate(perturbed, engine="compiled", cache=False)
        _assert_identical(reference, compiled)
        if spec.is_identity():
            assert perturbed is schedule
        if _content_changed(schedule, perturbed):
            assert schedule_digest(perturbed) != schedule_digest(schedule)
        else:
            assert schedule_digest(perturbed) == schedule_digest(schedule)

    @given(spec=_SPEC_STRATEGY)
    @settings(max_examples=25, deadline=None, derandomize=True)
    def test_lowering_is_deterministic(self, spec):
        schedule = _fuzz_schedule("1f1b")
        once = perturb_schedule(schedule, spec)
        twice = perturb_schedule(schedule, spec)
        assert schedule_digest(once) == schedule_digest(twice)
        assert simulate(once, cache=False).iteration_time == (
            simulate(twice, cache=False).iteration_time
        )


class TestDeadlockDiagnostics:
    def test_message_names_unmet_dependencies(self):
        a_key = TaskKey(0, 0, 0, TaskKind.FORWARD)
        b_key = TaskKey(0, 1, 0, TaskKind.FORWARD)
        a = Task(key=a_key, device=0, duration=1.0, deps=(b_key,))
        b = Task(key=b_key, device=1, duration=1.0, deps=(a_key,))
        schedule = Schedule(name="dead", num_devices=2, device_tasks=[[a], [b]])
        for engine in ("compiled", "reference"):
            with pytest.raises(SimulationError) as excinfo:
                simulate(schedule, engine=engine, cache=False)
            message = str(excinfo.value)
            # Each stuck task is reported with the dependency it waits on.
            assert str(a_key) in message
            assert str(b_key) in message
            assert "waiting on" in message


class TestSimulationCache:
    def _schedule(self, f=1.0, name="1F1B"):
        costs = [StageCosts(forward=f, backward=2.0, activation_bytes=1.0)]
        return one_f_one_b_schedule(costs, 2, name=name)

    def test_hit_on_same_schedule_object(self):
        cache = SimulationCache()
        schedule = self._schedule()
        first, info1 = simulate_with_info(schedule, cache=cache)
        second, info2 = simulate_with_info(schedule, cache=cache)
        assert not info1["cache_hit"] and info2["cache_hit"]
        assert cache.hits == 1 and cache.misses == 1
        assert second.iteration_time == first.iteration_time
        assert second.schedule is schedule

    def test_hit_on_rebuilt_schedule(self):
        # Content-keyed: a structurally identical schedule built from
        # scratch replays the memoized result.
        cache = SimulationCache()
        simulate(self._schedule(), cache=cache)
        result, info = simulate_with_info(self._schedule(), cache=cache)
        assert info["cache_hit"]
        assert result.iteration_time == simulate(self._schedule(), cache=False).iteration_time

    def test_name_excluded_from_digest(self):
        a = self._schedule(name="A")
        b = self._schedule(name="B")
        assert schedule_digest(a) == schedule_digest(b)

    def test_costs_move_digest(self):
        assert schedule_digest(self._schedule(f=1.0)) != schedule_digest(
            self._schedule(f=2.0)
        )

    def test_entries_are_engine_keyed(self):
        cache = SimulationCache()
        schedule = self._schedule()
        simulate(schedule, engine="compiled", cache=cache)
        _, info = simulate_with_info(schedule, engine="reference", cache=cache)
        assert not info["cache_hit"]
        assert len(cache) == 2

    def test_cache_false_bypasses(self):
        schedule = self._schedule()
        _, info = simulate_with_info(schedule, cache=False)
        assert not info["cache_hit"]
        assert info["cache_hits"] == 0 and info["cache_misses"] == 0

    def test_env_flag_disables_global_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CACHE", "0")
        _, info = simulate_with_info(self._schedule())
        assert not info["cache_hit"] and info["cache_misses"] == 0

    def test_fifo_eviction(self):
        cache = SimulationCache(max_entries=1)
        simulate(self._schedule(f=1.0), cache=cache)
        simulate(self._schedule(f=2.0), cache=cache)  # evicts f=1.0
        assert len(cache) == 1
        _, info = simulate_with_info(self._schedule(f=1.0), cache=cache)
        assert not info["cache_hit"]

    def test_hit_rate(self):
        cache = SimulationCache()
        schedule = self._schedule()
        simulate(schedule, cache=cache)
        simulate(schedule, cache=cache)
        simulate(schedule, cache=cache)
        assert cache.lookups == 3
        assert cache.hit_rate == pytest.approx(2 / 3)


class TestPerturbedCacheIsolation:
    """Regression: the digest must cover perturbation content, so a
    perturbed run can never replay a nominal cached result and a nominal
    run can never replay a perturbed one."""

    def _schedule(self):
        costs = [
            StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
            for _ in range(2)
        ]
        return one_f_one_b_schedule(costs, 4, hop_time=0.1)

    def _spec(self):
        return PerturbationSpec.build(
            {0: 1.5},
            jitter_sigma=0.1,
            seed=3,
            links=[LinkDegradation(0, 1, factor=2.0)],
        )

    def test_perturbed_run_misses_nominal_entry(self):
        cache = SimulationCache()
        schedule = self._schedule()
        nominal = simulate(schedule, cache=cache)
        perturbed, info = simulate_with_info(
            perturb_schedule(schedule, self._spec()), cache=cache
        )
        assert not info["cache_hit"]
        assert perturbed.iteration_time != nominal.iteration_time

    def test_nominal_run_misses_perturbed_entry(self):
        cache = SimulationCache()
        schedule = self._schedule()
        simulate(perturb_schedule(schedule, self._spec()), cache=cache)
        _, info = simulate_with_info(schedule, cache=cache)
        assert not info["cache_hit"]

    def test_distinct_seeds_get_distinct_entries(self):
        cache = SimulationCache()
        schedule = self._schedule()
        spec = PerturbationSpec.build(jitter_sigma=0.2, seed=0)
        simulate(perturb_schedule(schedule, spec), cache=cache)
        _, info = simulate_with_info(
            perturb_schedule(schedule, spec.reseeded(1)), cache=cache
        )
        assert not info["cache_hit"]
        assert len(cache) == 2

    def test_identical_perturbations_share_an_entry(self):
        cache = SimulationCache()
        schedule = self._schedule()
        spec = self._spec()
        simulate(perturb_schedule(schedule, spec), cache=cache)
        _, info = simulate_with_info(
            perturb_schedule(schedule, spec), cache=cache
        )
        assert info["cache_hit"]


class TestLoweringMemoization:
    def test_compiled_is_memoized(self):
        schedule = self._make()
        assert schedule.compiled() is schedule.compiled()

    def test_generators_prewarm_lowering(self):
        # build_schedule -> validate() compiles the lowering, so schedules
        # reach simulate() warm.
        schedule = self._make()
        assert getattr(schedule, "_compiled", None) is not None

    def test_digest_is_memoized(self):
        schedule = self._make()
        assert schedule.digest() is schedule.digest()

    @staticmethod
    def _make():
        costs = [StageCosts(forward=1.0, backward=2.0) for _ in range(2)]
        return one_f_one_b_schedule(costs, 4)


class TestDuplicateDependencies:
    """compile_schedule's duplicate-dep filter: set-backed, order-stable.

    The filter used to test membership against a list — O(deps^2) per
    task. The set-backed replacement must keep the exact same semantics:
    duplicates are dropped, first-seen order is preserved (it fixes the
    CSR edge layout), and indegrees count unique dependencies once.
    """

    def _many_duplicates_schedule(self, copies=200):
        # One backward depending on the same three forwards `copies`
        # times each, interleaved so first-seen order (f0, f1, f2) is
        # established by the leading occurrences.
        fwd_keys = [TaskKey(0, 0, m, TaskKind.FORWARD) for m in range(3)]
        deps = tuple(fwd_keys) + tuple(
            fwd_keys[m % 3] for m in range(3 * copies)
        )
        tasks = [
            Task(key=key, device=0, duration=1.0) for key in fwd_keys
        ]
        bwd_keys = [TaskKey(0, 0, m, TaskKind.BACKWARD) for m in range(3)]
        tasks.append(Task(key=bwd_keys[0], device=0, duration=2.0, deps=deps))
        tasks.extend(
            Task(key=key, device=0, duration=2.0) for key in bwd_keys[1:]
        )
        return Schedule(name="dupes", num_devices=1, device_tasks=[tasks])

    def test_duplicates_counted_once_in_first_seen_order(self):
        schedule = self._many_duplicates_schedule()
        compiled = schedule.compiled()
        backward = compiled.index[TaskKey(0, 0, 0, TaskKind.BACKWARD)]
        # 3 unique deps (+1 device-order edge), in first-seen order.
        assert compiled.dep_indices[backward] == (0, 1, 2)
        assert compiled.indegree[backward] == 4
        # Each forward carries exactly one dependency edge to the backward
        # (the immediately preceding forward also carries the implicit
        # device-order edge).
        for forward in range(3):
            edges_to_backward = [
                compiled.succ_idx[e]
                for e in range(
                    compiled.succ_ptr[forward], compiled.succ_ptr[forward + 1]
                )
            ].count(backward)
            expected = 2 if forward == backward - 1 else 1
            assert edges_to_backward == expected

    def test_simulation_unaffected_by_duplicate_count(self):
        light = self._many_duplicates_schedule(copies=1)
        heavy = self._many_duplicates_schedule(copies=500)
        for engine in ("compiled", "reference"):
            assert (
                simulate(light, engine=engine, cache=False).iteration_time
                == simulate(heavy, engine=engine, cache=False).iteration_time
            )


# -- Heterogeneous device pools ---------------------------------------------

_POOL_FACTOR = st.one_of(
    st.sampled_from([1.0, 1.21875, 1.3, 1.6, 2.0]),  # real part ratios
    st.floats(
        min_value=0.5, max_value=3.0, allow_nan=False, allow_infinity=False
    ),
)

_POOL_STRATEGY = st.lists(
    _POOL_FACTOR, min_size=_FUZZ_DEVICES, max_size=_FUZZ_DEVICES
)

_DEVICE_POOL_STRATEGY = st.lists(
    st.tuples(st.sampled_from(["a100", "ascend"]), _POOL_FACTOR),
    min_size=_FUZZ_DEVICES,
    max_size=_FUZZ_DEVICES,
)


class TestHeterogeneousPoolFuzz:
    """Tri-engine fuzz over drawn heterogeneous fleets: the per-rank
    slowdowns of a ``device_factors`` tuple or a mixed ``device_pool``
    lower through ``cluster_perturbation`` into a perturbed schedule, on
    which compiled and reference must stay bit-identical for every
    schedule kind (the batched engine's row-equality lives in
    ``tests/test_batched.py``)."""

    @pytest.mark.parametrize("kind", _FUZZ_KINDS)
    @given(factors=_POOL_STRATEGY)
    @settings(
        max_examples=15,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bit_identical_under_drawn_factor_pools(self, kind, factors):
        from repro.core.robust import cluster_perturbation
        from repro.hardware.cluster import cluster_a

        cluster = cluster_a(1).with_device_factors(factors)
        spec = cluster_perturbation(cluster, _FUZZ_DEVICES)
        perturbed = perturb_schedule(_fuzz_schedule(kind), spec)
        reference = simulate(perturbed, engine="reference", cache=False)
        compiled = simulate(perturbed, engine="compiled", cache=False)
        _assert_identical(reference, compiled)

    @pytest.mark.parametrize("kind", _FUZZ_KINDS)
    @given(parts=_DEVICE_POOL_STRATEGY)
    @settings(
        max_examples=15,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_bit_identical_under_drawn_device_pools(self, kind, parts):
        from repro.core.robust import cluster_perturbation
        from repro.hardware.cluster import cluster_a
        from repro.hardware.device import derated, device_preset

        pool = tuple(
            derated(device_preset(name), slowdown) for name, slowdown in parts
        )
        cluster = cluster_a(1).with_device_pool(pool)
        spec = cluster_perturbation(cluster, _FUZZ_DEVICES)
        perturbed = perturb_schedule(_fuzz_schedule(kind), spec)
        reference = simulate(perturbed, engine="reference", cache=False)
        compiled = simulate(perturbed, engine="compiled", cache=False)
        _assert_identical(reference, compiled)
