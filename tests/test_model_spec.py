"""Tests for repro.model.spec — architectures and parameter counts."""

import pytest

from repro.config import ConfigError
from repro.model.spec import (
    ModelSpec,
    bert_large,
    gpt3_175b,
    llama2_70b,
    model_by_name,
    tiny_gpt,
    tiny_llama,
)


class TestPresets:
    def test_gpt3_parameter_count(self):
        # 175B within 1%: the paper's headline model size.
        assert gpt3_175b().total_params() == pytest.approx(175e9, rel=0.01)

    def test_llama2_parameter_count(self):
        assert llama2_70b().total_params() == pytest.approx(70e9, rel=0.02)

    def test_bert_large_parameter_count(self):
        assert bert_large().total_params() == pytest.approx(340e6, rel=0.05)

    def test_gpt3_dimensions(self):
        spec = gpt3_175b()
        assert spec.hidden_size == 12288
        assert spec.num_layers == 96
        assert spec.head_dim == 128
        assert spec.tied_embeddings

    def test_llama2_uses_gqa(self):
        spec = llama2_70b()
        assert spec.num_kv_heads == 8 < spec.num_heads == 64
        assert spec.kv_hidden_size == 8 * spec.head_dim
        assert spec.gated_ffn and spec.rmsnorm and not spec.linear_bias

    def test_registry_lookup(self):
        assert model_by_name("gpt3-175b").name == "gpt3-175b"
        with pytest.raises(ConfigError):
            model_by_name("gpt5")


class TestParameterFormulas:
    def test_attention_params_ungrouped(self):
        spec = tiny_gpt(num_layers=1, hidden_size=64)
        h = 64
        expected = 4 * h * h + 4 * h + 2 * h  # qkvo + biases + layernorm
        assert spec.attention_params() == expected

    def test_attention_params_grouped(self):
        spec = ModelSpec(
            name="x",
            hidden_size=64,
            num_layers=1,
            num_heads=8,
            num_kv_heads=2,
            ffn_hidden_size=128,
            vocab_size=100,
            linear_bias=False,
            rmsnorm=True,
        )
        kv = 2 * 8  # kv_heads * head_dim
        expected = 64 * 64 + 2 * 64 * kv + 64 * 64 + 64
        assert spec.attention_params() == expected

    def test_gated_ffn_has_three_matrices(self):
        gated = tiny_llama(num_layers=1, hidden_size=64)
        plain = ModelSpec(
            name="plain",
            hidden_size=64,
            num_layers=1,
            num_heads=4,
            num_kv_heads=2,
            ffn_hidden_size=gated.ffn_hidden_size,
            vocab_size=gated.vocab_size,
            gated_ffn=False,
            linear_bias=False,
            rmsnorm=True,
        )
        h, f = 64, gated.ffn_hidden_size
        assert gated.ffn_params() - plain.ffn_params() == h * f

    def test_tied_embeddings_shrink_head(self):
        tied = gpt3_175b()
        untied = ModelSpec(
            **{**tied.__dict__, "tied_embeddings": False, "name": "untied"}
        )
        assert untied.head_params() - tied.head_params() == (
            tied.vocab_size * tied.hidden_size
        )

    def test_total_is_sum_of_parts(self):
        spec = tiny_llama(num_layers=3)
        assert spec.total_params() == (
            spec.embedding_params()
            + 3 * (spec.attention_params() + spec.ffn_params())
            + spec.head_params()
        )


class TestValidation:
    def test_heads_must_divide_hidden(self):
        with pytest.raises(ConfigError):
            ModelSpec(
                name="bad",
                hidden_size=65,
                num_layers=1,
                num_heads=8,
                num_kv_heads=8,
                ffn_hidden_size=128,
                vocab_size=100,
            )

    def test_kv_heads_must_divide_heads(self):
        with pytest.raises(ConfigError):
            ModelSpec(
                name="bad",
                hidden_size=64,
                num_layers=1,
                num_heads=8,
                num_kv_heads=3,
                ffn_hidden_size=128,
                vocab_size=100,
            )
