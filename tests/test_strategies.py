"""Tests for fixed recomputation policies."""

import pytest

from repro.core.partition_dp import even_boundaries
from repro.core.strategies import (
    RecomputePolicy,
    stage_costs_for_policy,
    stage_eval_for_policy,
)


class TestPolicySemantics:
    def test_full_keeps_only_always_saved(self):
        policy = RecomputePolicy.FULL
        assert policy.saves_unit("attn.out", always_saved=True)
        assert not policy.saves_unit("attn.q", always_saved=False)
        assert not policy.saves_unit("ffn.act", always_saved=False)

    def test_none_keeps_everything(self):
        policy = RecomputePolicy.NONE
        assert policy.saves_unit("attn.q", always_saved=False)
        assert policy.saves_unit("ffn.act", always_saved=False)

    def test_selective_recomputes_only_attention_core(self):
        policy = RecomputePolicy.SELECTIVE
        assert not policy.saves_unit("attn.core", always_saved=False)
        assert policy.saves_unit("attn.q", always_saved=False)
        assert policy.saves_unit("ffn.act", always_saved=False)


class TestStageEvaluation:
    def test_none_uses_more_memory_than_full(self, gpt3_ctx):
        layers = gpt3_ctx.layers[:10]
        full = stage_eval_for_policy(
            gpt3_ctx.profiler, 0, layers, RecomputePolicy.FULL,
            gpt3_ctx.hard_capacity_bytes,
        )
        none = stage_eval_for_policy(
            gpt3_ctx.profiler, 0, layers, RecomputePolicy.NONE,
            gpt3_ctx.hard_capacity_bytes,
        )
        assert none.memory.total_bytes > full.memory.total_bytes

    def test_full_has_slower_backward(self, gpt3_ctx):
        layers = gpt3_ctx.layers[:10]
        full = stage_eval_for_policy(
            gpt3_ctx.profiler, 0, layers, RecomputePolicy.FULL,
            gpt3_ctx.hard_capacity_bytes,
        )
        none = stage_eval_for_policy(
            gpt3_ctx.profiler, 0, layers, RecomputePolicy.NONE,
            gpt3_ctx.hard_capacity_bytes,
        )
        assert full.backward > none.backward
        assert full.forward == pytest.approx(none.forward)

    def test_selective_between_full_and_none(self, gpt3_ctx):
        layers = gpt3_ctx.layers[:10]
        evals = {
            policy: stage_eval_for_policy(
                gpt3_ctx.profiler, 0, layers, policy, gpt3_ctx.hard_capacity_bytes
            )
            for policy in RecomputePolicy
        }
        assert (
            evals[RecomputePolicy.NONE].backward
            <= evals[RecomputePolicy.SELECTIVE].backward
            <= evals[RecomputePolicy.FULL].backward
        )
        assert (
            evals[RecomputePolicy.FULL].memory.total_bytes
            <= evals[RecomputePolicy.SELECTIVE].memory.total_bytes
            <= evals[RecomputePolicy.NONE].memory.total_bytes
        )

    def test_feasibility_against_capacity(self, gpt3_ctx):
        layers = gpt3_ctx.layers[:10]
        roomy = stage_eval_for_policy(
            gpt3_ctx.profiler, 0, layers, RecomputePolicy.FULL, 1e15
        )
        cramped = stage_eval_for_policy(
            gpt3_ctx.profiler, 0, layers, RecomputePolicy.FULL, 1e6
        )
        assert roomy.feasible and not cramped.feasible

    def test_stage_costs_for_policy_covers_all_stages(self, gpt3_ctx):
        p = gpt3_ctx.parallel.pipeline_parallel
        boundaries = even_boundaries(len(gpt3_ctx.layers), p)
        evals = stage_costs_for_policy(
            gpt3_ctx.profiler,
            boundaries,
            gpt3_ctx.layers,
            RecomputePolicy.FULL,
            gpt3_ctx.hard_capacity_bytes,
        )
        assert len(evals) == p
        # Later stages keep fewer in-flight micro-batches.
        in_flight = [e.memory.in_flight_microbatches for e in evals]
        assert in_flight == list(range(p, 0, -1))

    def test_saved_unit_counts_match_policy(self, gpt3_ctx):
        layers = gpt3_ctx.layers[1:5]  # ATT FFN ATT FFN
        full = stage_eval_for_policy(
            gpt3_ctx.profiler, 0, layers, RecomputePolicy.FULL,
            gpt3_ctx.hard_capacity_bytes,
        )
        assert full.saved_unit_counts == {"attn.out": 2, "ffn.out": 2}
        none = stage_eval_for_policy(
            gpt3_ctx.profiler, 0, layers, RecomputePolicy.NONE,
            gpt3_ctx.hard_capacity_bytes,
        )
        assert none.saved_unit_counts["attn.q"] == 2
        assert sum(none.saved_unit_counts.values()) == 2 * (6 + 4)
