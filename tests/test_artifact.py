"""Tests for the artifact-style workflow driver."""

import json

import pytest

from repro.experiments.artifact import collect_results, run_artifact_workflow


@pytest.fixture(scope="module")
def workflow_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("artifact")
    run_artifact_workflow(str(root), fast=True)
    return root


class TestWorkflowOutputs:
    def test_result_tree_structure(self, workflow_dir):
        assert (workflow_dir / "expected_result.txt").exists()
        assert (workflow_dir / "results.json").exists()
        assert (workflow_dir / "gpt_result").is_dir()
        assert (workflow_dir / "llama2_result").is_dir()

    def test_per_config_outputs(self, workflow_dir):
        config_dirs = list((workflow_dir / "gpt_result").iterdir())
        assert config_dirs
        for config_dir in config_dirs:
            output = (config_dir / "output.txt").read_text()
            assert "AdaPipe" in output and "DAPPLE-Full" in output
            assert "iteration" in output

    def test_worker_trace_records_tasks(self, workflow_dir):
        trace = next((workflow_dir / "gpt_result").rglob("worker_trace.jsonl"))
        lines = trace.read_text().strip().splitlines()
        record = json.loads(lines[0])
        assert {"device", "stage", "kind", "start", "end"} <= set(record)
        # n micro-batches x p stages x fwd/bwd
        assert len(lines) == 2 * 8 * 128

    def test_results_json_has_all_methods(self, workflow_dir):
        entries = json.loads((workflow_dir / "results.json").read_text())
        methods = {entry["method"] for entry in entries}
        assert methods == {
            "DAPPLE-Full",
            "DAPPLE-Non",
            "Even Partitioning",
            "AdaPipe",
        }

    def test_expected_result_mentions_models(self, workflow_dir):
        text = (workflow_dir / "expected_result.txt").read_text()
        assert "gpt3-175b" in text and "llama2-70b" in text


class TestCollector:
    def test_collect_results_summary(self, workflow_dir):
        summary = collect_results(str(workflow_dir))
        assert "gpt3-175b @ seq 4096" in summary
        assert "AdaPipe speedup over best DAPPLE" in summary

    def test_collect_is_rerunnable(self, workflow_dir):
        assert collect_results(str(workflow_dir)) == collect_results(
            str(workflow_dir)
        )
