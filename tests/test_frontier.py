"""Tests for the memory/time frontier analysis."""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.frontier import frontier_is_monotone, memory_time_frontier
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a

GIB = 1024**3


@pytest.fixture
def ctx(gpt3):
    train = TrainingConfig(sequence_length=8192, global_batch_size=16)
    return PlannerContext(cluster_a(8), gpt3, train, ParallelConfig(8, 8, 1))


class TestFrontier:
    def test_more_memory_never_slower(self, ctx):
        points = memory_time_frontier(ctx, [55 * GIB, 62 * GIB, 70 * GIB, 78 * GIB])
        assert frontier_is_monotone(points)

    def test_relaxing_the_constraint_helps(self, ctx):
        """Section 7.4: 'the memory constraint can be elevated for better
        performance'."""
        points = memory_time_frontier(ctx, [55 * GIB, 78 * GIB])
        assert points[0].feasible and points[1].feasible
        assert points[1].modeled_time < points[0].modeled_time

    def test_peak_memory_respects_each_limit(self, ctx):
        points = memory_time_frontier(ctx, [60 * GIB, 70 * GIB])
        for point in points:
            assert point.feasible
            assert point.peak_memory_bytes <= point.memory_limit_bytes * 1.001

    def test_too_small_limit_is_infeasible(self, ctx):
        (point,) = memory_time_frontier(ctx, [30 * GIB])
        assert not point.feasible
        assert point.modeled_time is None

    def test_simulated_tracks_modeled(self, ctx):
        (point,) = memory_time_frontier(ctx, [70 * GIB])
        assert point.simulated_time == pytest.approx(point.modeled_time, rel=0.05)

    def test_monotone_helper_detects_violations(self):
        from repro.core.frontier import FrontierPoint

        good = [
            FrontierPoint(1.0, True, 10.0, None, None),
            FrontierPoint(2.0, True, 9.0, None, None),
        ]
        bad = [
            FrontierPoint(1.0, True, 9.0, None, None),
            FrontierPoint(2.0, True, 10.0, None, None),
        ]
        assert frontier_is_monotone(good)
        assert not frontier_is_monotone(bad)
