"""Tests for repro.pipeline.tasks — schedule structural validation."""

import pytest

from repro.pipeline.tasks import Schedule, Task, TaskKey, TaskKind


def _task(stage, mb, kind, device=None, deps=()):
    key = TaskKey(0, stage, mb, kind)
    return Task(key=key, device=device if device is not None else stage,
                duration=1.0, deps=deps)


def _schedule(device_tasks):
    return Schedule(
        name="test", num_devices=len(device_tasks), device_tasks=device_tasks
    )


class TestScheduleValidation:
    def test_valid_pair_passes(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        bwd = _task(0, 0, TaskKind.BACKWARD, deps=(fwd.key,))
        _schedule([[fwd, bwd]]).validate()

    def test_duplicate_keys_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        with pytest.raises(ValueError, match="duplicate"):
            _schedule([[fwd, fwd]]).validate()

    def test_missing_dependency_rejected(self):
        ghost = TaskKey(0, 9, 9, TaskKind.FORWARD)
        fwd = _task(0, 0, TaskKind.FORWARD, deps=(ghost,))
        bwd = _task(0, 0, TaskKind.BACKWARD)
        with pytest.raises(ValueError, match="missing"):
            _schedule([[fwd, bwd]]).validate()

    def test_forward_without_backward_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        with pytest.raises(ValueError, match="no backward twin"):
            _schedule([[fwd]]).validate()

    def test_twin_on_different_device_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD, device=0)
        bwd = _task(0, 0, TaskKind.BACKWARD, device=1)
        with pytest.raises(ValueError, match="different devices"):
            _schedule([[fwd], [bwd]]).validate()

    def test_all_tasks_flattens(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        bwd = _task(0, 0, TaskKind.BACKWARD)
        schedule = _schedule([[fwd], [bwd]])
        assert len(schedule.all_tasks()) == 2

    def test_task_key_str(self):
        key = TaskKey(0, 1, 2, TaskKind.FORWARD)
        assert "s1" in str(key) and "m2" in str(key)
