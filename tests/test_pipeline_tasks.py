"""Tests for repro.pipeline.tasks — schedule structural validation."""

import pytest

from repro.pipeline.tasks import Schedule, Task, TaskKey, TaskKind


def _task(stage, mb, kind, device=None, deps=()):
    key = TaskKey(0, stage, mb, kind)
    return Task(key=key, device=device if device is not None else stage,
                duration=1.0, deps=deps)


def _schedule(device_tasks):
    return Schedule(
        name="test", num_devices=len(device_tasks), device_tasks=device_tasks
    )


class TestScheduleValidation:
    def test_valid_pair_passes(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        bwd = _task(0, 0, TaskKind.BACKWARD, deps=(fwd.key,))
        _schedule([[fwd, bwd]]).validate()

    def test_duplicate_keys_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        with pytest.raises(ValueError, match="duplicate"):
            _schedule([[fwd, fwd]]).validate()

    def test_missing_dependency_rejected(self):
        ghost = TaskKey(0, 9, 9, TaskKind.FORWARD)
        fwd = _task(0, 0, TaskKind.FORWARD, deps=(ghost,))
        bwd = _task(0, 0, TaskKind.BACKWARD)
        with pytest.raises(ValueError, match="missing"):
            _schedule([[fwd, bwd]]).validate()

    def test_forward_without_backward_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        with pytest.raises(ValueError, match="no backward twin"):
            _schedule([[fwd]]).validate()

    def test_twin_on_different_device_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD, device=0)
        bwd = _task(0, 0, TaskKind.BACKWARD, device=1)
        with pytest.raises(ValueError, match="different devices"):
            _schedule([[fwd], [bwd]]).validate()

    def test_all_tasks_flattens(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        bwd = _task(0, 0, TaskKind.BACKWARD)
        schedule = _schedule([[fwd], [bwd]])
        assert len(schedule.all_tasks()) == 2

    def test_task_key_str(self):
        key = TaskKey(0, 1, 2, TaskKind.FORWARD)
        assert "s1" in str(key) and "m2" in str(key)


class TestPerKindTwinContract:
    """The generalized completeness contract over the five task kinds."""

    def test_split_backward_quad_passes(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        rec = _task(0, 0, TaskKind.RECOMPUTE, deps=(fwd.key,))
        gi = _task(0, 0, TaskKind.BACKWARD_INPUT, deps=(rec.key,))
        gw = _task(0, 0, TaskKind.BACKWARD_WEIGHT, deps=(gi.key,))
        _schedule([[fwd, rec, gi, gw]]).validate()

    def test_grad_input_without_grad_weight_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        gi = _task(0, 0, TaskKind.BACKWARD_INPUT, deps=(fwd.key,))
        with pytest.raises(ValueError, match="no grad-weight"):
            _schedule([[fwd, gi]]).validate()

    def test_mixed_plain_and_split_backward_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        bwd = _task(0, 0, TaskKind.BACKWARD, deps=(fwd.key,))
        gi = _task(0, 0, TaskKind.BACKWARD_INPUT, deps=(fwd.key,))
        gw = _task(0, 0, TaskKind.BACKWARD_WEIGHT, deps=(gi.key,))
        with pytest.raises(ValueError, match="both"):
            _schedule([[fwd, bwd, gi, gw]]).validate()

    def test_orphan_non_forward_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD)
        bwd = _task(0, 0, TaskKind.BACKWARD, deps=(fwd.key,))
        orphan = _task(0, 1, TaskKind.BACKWARD_WEIGHT)
        with pytest.raises(ValueError, match="no forward twin"):
            _schedule([[fwd, bwd, orphan]]).validate()

    def test_recompute_on_wrong_device_rejected(self):
        fwd = _task(0, 0, TaskKind.FORWARD, device=0)
        bwd = _task(0, 0, TaskKind.BACKWARD, device=0, deps=(fwd.key,))
        rec = _task(0, 0, TaskKind.RECOMPUTE, device=1, deps=(fwd.key,))
        with pytest.raises(ValueError, match="different devices"):
            _schedule([[fwd, bwd], [rec]]).validate()

    def test_all_violations_reported_per_device(self):
        # Three independent violations across two devices: the error must
        # name every one of them, grouped per device, not just the first.
        lone0 = _task(0, 0, TaskKind.FORWARD, device=0)
        lone1 = _task(1, 1, TaskKind.FORWARD, device=0)
        fwd = _task(2, 0, TaskKind.FORWARD, device=1)
        gi = _task(2, 0, TaskKind.BACKWARD_INPUT, device=1, deps=(fwd.key,))
        with pytest.raises(ValueError) as exc:
            _schedule([[lone0, lone1], [fwd, gi]]).validate()
        message = str(exc.value)
        assert "3 violations" in message
        assert "device 0" in message and "device 1" in message
        assert str(lone0.key) in message and str(lone1.key) in message
        assert "no grad-weight" in message


class TestActivationBytesContract:
    """Only forwards may carry activation_bytes (enforced at lowering)."""

    def _pair(self, backward_bytes):
        fwd = Task(
            key=TaskKey(0, 0, 0, TaskKind.FORWARD),
            device=0,
            duration=1.0,
            activation_bytes=4.0,
        )
        bwd = Task(
            key=TaskKey(0, 0, 0, TaskKind.BACKWARD),
            device=0,
            duration=2.0,
            deps=(fwd.key,),
            activation_bytes=backward_bytes,
        )
        return _schedule([[fwd, bwd]])

    def test_nonzero_activation_bytes_on_backward_rejected(self):
        with pytest.raises(ValueError, match="activation_bytes"):
            self._pair(backward_bytes=4.0).compiled()

    def test_zero_activation_bytes_on_backward_allowed(self):
        self._pair(backward_bytes=0.0).compiled()
