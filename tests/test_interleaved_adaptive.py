"""Tests for adaptive recomputation under interleaved 1F1B (extension)."""

import pytest

from repro.baselines.extensions import evaluate_interleaved
from repro.config import ParallelConfig, TrainingConfig
from repro.core.interleaved_adaptive import (
    evaluate_interleaved_adaptive,
    plan_interleaved_adaptive,
)
from repro.core.strategies import RecomputePolicy
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts
from repro.pipeline.tracing import stage_in_flight_peaks


@pytest.fixture
def ctx(gpt3):
    train = TrainingConfig(sequence_length=8192, global_batch_size=16)
    return PlannerContext(
        cluster_a(8),
        gpt3,
        train,
        ParallelConfig(8, 8, 1),
        memory_limit_bytes=70 * 1024**3,
    )


class TestInFlightMeasurement:
    def test_1f1b_reproduces_analytic_counts(self):
        costs = [StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
                 for _ in range(4)]
        result = simulate(one_f_one_b_schedule(costs, 8))
        peaks = stage_in_flight_peaks(result)
        assert {k[1]: v for k, v in peaks.items()} == {0: 4, 1: 3, 2: 2, 3: 1}

    def test_peaks_capped_by_micro_batches(self):
        costs = [StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
                 for _ in range(4)]
        result = simulate(one_f_one_b_schedule(costs, 2))
        assert max(stage_in_flight_peaks(result).values()) <= 2


class TestAdaptiveInterleaved:
    def test_plan_structure(self, ctx):
        plan = plan_interleaved_adaptive(ctx, chunks=2)
        assert plan.feasible
        assert len(plan.stages) == 16
        assert plan.stages[0].layer_start == 0
        assert plan.stages[-1].layer_end == len(ctx.layers)

    def test_later_global_stages_save_more(self, ctx):
        plan = plan_interleaved_adaptive(ctx, chunks=2)
        saved = plan.saved_unit_counts()
        assert sum(saved[8:]) > sum(saved[:8])

    def test_beats_interleaved_full(self, ctx):
        adaptive = evaluate_interleaved_adaptive(ctx, 2)
        full = evaluate_interleaved(ctx, RecomputePolicy.FULL, 2)
        assert adaptive.iteration_time is not None
        assert adaptive.iteration_time < full.iteration_time

    def test_memory_stays_within_device(self, ctx):
        adaptive = evaluate_interleaved_adaptive(ctx, 2)
        assert not adaptive.oom
        assert max(adaptive.simulation.device_peak_bytes) <= (
            ctx.cluster.device.usable_memory_bytes
        )

    def test_single_chunk_degenerates_to_plain_layout(self, ctx):
        plan = plan_interleaved_adaptive(ctx, chunks=1)
        assert len(plan.stages) == 8
        assert plan.feasible
