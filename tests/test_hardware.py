"""Tests for repro.hardware — devices, clusters, communication."""

import pytest

from repro.config import ConfigError, ParallelConfig, TrainingConfig
from repro.hardware.cluster import cluster_a, cluster_b
from repro.hardware.comm import CommModel
from repro.hardware.device import (
    a100_80gb,
    ascend910_32gb,
    derated,
    device_preset,
)
from repro.model.units import OpKind


class TestDevices:
    def test_a100_capacity(self):
        device = a100_80gb()
        assert device.memory_bytes == 80 * 1024**3
        assert device.usable_memory_bytes < device.memory_bytes

    def test_ascend_capacity_is_the_papers_constraint(self):
        # Section 7.2: "the memory capacity of the Ascend 910 is only 32GB".
        assert ascend910_32gb().memory_bytes == 32 * 1024**3

    def test_gemm_efficiency_exceeds_elementwise(self):
        device = a100_80gb()
        assert device.achieved_flops(OpKind.GEMM) > 5 * device.achieved_flops(
            OpKind.ELEMENTWISE
        )

    def test_unknown_op_kind_gets_default_efficiency(self):
        device = a100_80gb()
        object.__setattr__(device, "efficiency", {})
        assert device.achieved_flops(OpKind.GEMM) == pytest.approx(
            0.1 * device.peak_flops
        )


class TestClusters:
    def test_cluster_a_shape(self):
        cluster = cluster_a()
        assert cluster.num_devices == 64
        assert cluster.devices_per_node == 8
        assert cluster.device.name.startswith("A100")

    def test_cluster_b_shape(self):
        cluster = cluster_b()
        assert cluster.num_devices == 256
        assert cluster.device.name.startswith("Ascend")

    def test_validate_accepts_good_strategy(self):
        cluster_a().validate_parallel(ParallelConfig(8, 8, 1), 64)

    def test_validate_rejects_wrong_device_count(self):
        with pytest.raises(ConfigError):
            cluster_a().validate_parallel(ParallelConfig(8, 8, 1), 32)

    def test_validate_rejects_cross_node_tensor_parallel(self):
        with pytest.raises(ConfigError):
            cluster_a().validate_parallel(ParallelConfig(16, 4, 1), 64)

    def test_validate_rejects_oversubscription(self):
        with pytest.raises(ConfigError):
            cluster_a(1).validate_parallel(ParallelConfig(8, 8, 1), 64)

    def test_pipeline_bandwidth_is_inter_node(self):
        cluster = cluster_a()
        assert cluster.pipeline_bandwidth() == cluster.inter_node_bandwidth
        assert cluster.intra_node_bandwidth > cluster.inter_node_bandwidth


class TestCommModel:
    @pytest.fixture
    def comm(self):
        return CommModel(cluster_a())

    def test_p2p_time_scales_with_bytes(self, comm):
        assert comm.p2p_time(2e9) == pytest.approx(2 * comm.p2p_time(1e9), rel=0.01)

    def test_p2p_zero_bytes_is_free(self, comm):
        assert comm.p2p_time(0) == 0.0

    def test_allreduce_single_rank_is_free(self, comm):
        assert comm.allreduce_time(1e9, 1, intra_node=True) == 0.0

    def test_allreduce_volume_factor(self, comm):
        # Ring all-reduce moves 2(g-1)/g of the data: time grows with group
        # size but saturates.
        t2 = comm.allreduce_time(1e9, 2, intra_node=True)
        t8 = comm.allreduce_time(1e9, 8, intra_node=True)
        assert t2 < t8 < 2 * t2

    def test_reduce_scatter_is_half_allreduce(self, comm):
        full = comm.allreduce_time(1e9, 4, intra_node=False)
        assert comm.reduce_scatter_time(1e9, 4, intra_node=False) == pytest.approx(
            full / 2
        )
        assert comm.all_gather_time(1e9, 4, intra_node=False) == pytest.approx(
            full / 2
        )

    def test_intra_node_is_faster(self, comm):
        assert comm.allreduce_time(1e9, 4, intra_node=True) < comm.allreduce_time(
            1e9, 4, intra_node=False
        )

    def test_pipeline_hop_time_positive(self, comm):
        train = TrainingConfig(sequence_length=4096, global_batch_size=8)
        assert comm.pipeline_hop_time(12288, train) > 0

    def test_tp_overhead_zero_without_tensor_parallel(self, comm):
        train = TrainingConfig(sequence_length=4096, global_batch_size=8)
        assert (
            comm.tensor_parallel_overhead_per_layer(
                12288, train, ParallelConfig(1, 8, 8)
            )
            == 0.0
        )

    def test_tp_overhead_positive_with_tensor_parallel(self, comm):
        train = TrainingConfig(sequence_length=4096, global_batch_size=8)
        assert (
            comm.tensor_parallel_overhead_per_layer(
                12288, train, ParallelConfig(8, 8, 1)
            )
            > 0.0
        )

    def test_gradient_sync_free_without_data_parallel(self, comm):
        assert comm.gradient_sync_time(1_000_000, ParallelConfig(8, 8, 1)) == 0.0

    def test_gradient_sync_positive_with_data_parallel(self, comm):
        assert comm.gradient_sync_time(1_000_000, ParallelConfig(8, 4, 2)) > 0.0


class TestDevicePool:
    """Per-rank device pools (heterogeneous fleets) on ClusterSpec."""

    def test_with_device_pool_round_trip(self):
        base = a100_80gb()
        pool = (base, derated(base, 1.3))
        cluster = cluster_a(1).with_device_pool(pool)
        assert cluster.device_pool == pool
        assert cluster.rank_device(0) == base
        assert cluster.rank_device(1).slowdown == 1.3
        assert cluster.heterogeneous

    def test_pool_must_not_be_empty(self):
        with pytest.raises(ValueError, match="at least one device"):
            cluster_a(1).with_device_pool(())

    def test_pool_must_fit_cluster(self):
        with pytest.raises(ValueError, match="only 8 devices"):
            cluster_a(1).with_device_pool((a100_80gb(),) * 9)

    def test_pool_and_factors_are_mutually_exclusive(self):
        import dataclasses

        with pytest.raises(ValueError, match="mutually exclusive"):
            dataclasses.replace(
                cluster_a(1),
                device_factors=(1.0, 1.2),
                device_pool=(a100_80gb(), a100_80gb()),
            )
        # with_device_pool clears stale factors instead of raising.
        cluster = cluster_a(1).with_device_factors((1.0, 1.2))
        pooled = cluster.with_device_pool((a100_80gb(), a100_80gb()))
        assert pooled.device_factors is None

    def test_rank_device_out_of_range_is_config_error(self):
        cluster = cluster_a(1).with_device_pool((a100_80gb(),))
        with pytest.raises(ConfigError, match="out of range"):
            cluster.rank_device(1)

    def test_rank_compute_factor(self):
        base = a100_80gb()
        cluster = cluster_a(1).with_device_pool(
            (base, derated(base, 1.3), ascend910_32gb())
        )
        assert cluster.rank_compute_factor(0) == 1.0
        assert cluster.rank_compute_factor(1) == 1.3
        # Ascend slot in an A100-rooflined cluster: peak-FLOP ratio.
        assert cluster.rank_compute_factor(2) == pytest.approx(
            base.peak_flops / ascend910_32gb().peak_flops
        )
        # Poolless clusters are always nominal for the planner — even with
        # device_factors, which feed robustness pricing only.
        assert cluster_a(1).rank_compute_factor(5) == 1.0
        assert (
            cluster_a(1).with_device_factors((1.5,)).rank_compute_factor(0)
            == 1.0
        )

    def test_pool_fixes_pipeline_depth(self):
        cluster = cluster_a(1).with_device_pool((a100_80gb(),) * 3)
        cluster.validate_parallel(ParallelConfig(1, 3, 1), 3)
        with pytest.raises(ConfigError, match="fixes the pipeline depth"):
            cluster.validate_parallel(ParallelConfig(1, 2, 1), 2)

    def test_homogeneous_pool_is_not_heterogeneous(self):
        cluster = cluster_a(1).with_device_pool((cluster_a(1).device,) * 2)
        assert not cluster.heterogeneous


class TestDeviceFactorFallback:
    """device_factor's documented resolution order (class docstring)."""

    def test_explicit_factors_win(self):
        cluster = cluster_a(1).with_device_factors((1.4, 1.0))
        assert cluster.device_factor(0) == 1.4
        assert cluster.device_factor(1) == 1.0

    def test_short_factors_tuple_falls_back_to_device_slowdown(self):
        # The factors tuple may be shorter than the pipeline (p is not
        # known at cluster-construction time); ranks past its end fall
        # back to the base device's slowdown, documented and pinned here.
        cluster = cluster_a(1).with_device_factors((1.4,))
        assert cluster.device_factor(0) == 1.4
        assert cluster.device_factor(1) == cluster.device.slowdown == 1.0

    def test_pool_ranks_resolve_to_pool_factor(self):
        base = a100_80gb()
        cluster = cluster_a(1).with_device_pool((base, derated(base, 1.2)))
        assert cluster.device_factor(1) == 1.2
        # Past the pool: base device slowdown, same fallback as factors.
        assert cluster.device_factor(7) == 1.0


class TestDevicePresets:
    def test_derated_marks_name_and_slowdown(self):
        base = a100_80gb()
        slow = derated(base, 1.25)
        assert slow.slowdown == 1.25
        assert slow.name == f"{base.name}*1.25"
        assert derated(base, 1.0) == base

    def test_preset_lookup(self):
        assert device_preset("a100") == a100_80gb()
        assert device_preset("ASCEND") == ascend910_32gb()
        with pytest.raises(ValueError, match="known"):
            device_preset("tpu")
