"""Tests for the baseline method registry."""

import pytest

from repro.baselines import ALL_METHODS, BASELINE_METHODS, evaluate_method, method_spec
from repro.config import ConfigError, ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a


class TestRegistry:
    def test_contains_all_eight_methods(self):
        assert set(ALL_METHODS) == {
            "DAPPLE-Full",
            "DAPPLE-Non",
            "Chimera-Full",
            "Chimera-Non",
            "ChimeraD-Full",
            "ChimeraD-Non",
            "Even Partitioning",
            "AdaPipe",
        }

    def test_baseline_subset(self):
        assert all(name in ALL_METHODS for name in BASELINE_METHODS)
        assert "AdaPipe" not in BASELINE_METHODS

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigError):
            method_spec("MegaPipe")

    def test_chimera_uses_simulation_memory(self):
        assert method_spec("Chimera-Non").memory_by_simulation
        assert not method_spec("DAPPLE-Full").memory_by_simulation


class TestEvaluateMethod:
    def test_all_methods_run_on_small_config(self, gpt3_ctx):
        for name in ALL_METHODS:
            evaluation = evaluate_method(name, gpt3_ctx)
            assert evaluation.plan.method == name
            # At seq 2048 on 80 GB everything should be feasible except
            # possibly the Chimera variants (doubled parameters).
            if name.startswith("DAPPLE") or name in ("Even Partitioning", "AdaPipe"):
                assert evaluation.iteration_time is not None, name

    def test_dapple_full_slower_than_non_when_memory_allows(self, gpt3_ctx):
        full = evaluate_method("DAPPLE-Full", gpt3_ctx)
        non = evaluate_method("DAPPLE-Non", gpt3_ctx)
        assert full.iteration_time > non.iteration_time

    def test_chimera_odd_micro_batches_reported_infeasible(self, gpt3):
        train = TrainingConfig(sequence_length=2048, global_batch_size=7)
        ctx = PlannerContext(cluster_a(8), gpt3, train, ParallelConfig(8, 8, 1))
        evaluation = evaluate_method("Chimera-Full", ctx)
        assert evaluation.oom  # cannot split 7 micro-batches over 2 pipelines

    def test_chimera_full_duplicates_parameters(self, gpt3_ctx):
        chimera = evaluate_method("Chimera-Full", gpt3_ctx)
        dapple = evaluate_method("DAPPLE-Full", gpt3_ctx)
        assert max(chimera.peak_memory_per_device()) > max(
            dapple.peak_memory_per_device()
        )

    def test_adapipe_at_least_matches_even_partitioning_model(self, gpt3_ctx):
        adapipe = evaluate_method("AdaPipe", gpt3_ctx)
        even = evaluate_method("Even Partitioning", gpt3_ctx)
        assert (
            adapipe.plan.modeled_iteration_time
            <= even.plan.modeled_iteration_time + 1e-9
        )
