"""Property and regression tests for repro.core.robust.

Four properties pin the robustness layer's semantics:

* zero-perturbation identity — an identity spec's ensemble is bit-identical
  to the nominal simulation, all the way into ``evaluate_plan`` metadata;
* monotonicity — slowing one device never speeds the deterministic
  perturbed iteration (longest paths are monotone in task durations);
* seed determinism — a report is a pure function of (schedule, spec,
  draws);
* non-negative criticality — the finite difference can never go negative.

Plus the acceptance regression: on the pinned heterogeneous-cluster
fixture, ranking by p95 selects a *different* 3D strategy than ranking by
nominal time.
"""

import dataclasses
import warnings

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import build_schedule_for_plan, evaluate_plan
from repro.core.robust import (
    ROBUST_OBJECTIVES,
    RobustnessReport,
    cluster_perturbation,
    evaluate_robustness,
    robust_metadata,
)
from repro.core.search import PlannerContext, plan_adapipe
from repro.core.sweep import SweepConfig, run_sweep
from repro.hardware.cluster import cluster_a
from repro.model.spec import model_by_name
from repro.pipeline.perturb import PerturbationSpec, TransientStall
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts


def _schedule(p=4, n=8, hop=0.1):
    costs = [
        StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
        for _ in range(p)
    ]
    return one_f_one_b_schedule(costs, n, hop_time=hop)


def _report(times, nominal=1.0, deterministic=1.0):
    return RobustnessReport(
        spec=PerturbationSpec(),
        draws=len(times),
        nominal_time=nominal,
        times=tuple(times),
        deterministic_time=deterministic,
        device_criticality=(0.2, 0.8),
    )


class TestReportStatistics:
    def test_summary_statistics(self):
        report = _report([float(i) for i in range(1, 21)], nominal=2.0)
        assert report.mean_time == pytest.approx(10.5)
        # Nearest-rank p95 of 20 samples is the 19th order statistic.
        assert report.p95_time == 19.0
        assert report.worst_time == 20.0
        assert report.best_time == 1.0
        assert report.objective("nominal") == 2.0
        assert report.slowdown("worst") == 10.0

    def test_single_draw_statistics_coincide(self):
        report = _report([3.0])
        assert report.mean_time == report.p95_time == report.worst_time == 3.0

    def test_p95_degenerates_to_worst_below_twenty_draws(self):
        # Nearest-rank ceil(0.95 K) == K for every K < 20: the "p95" of a
        # small ensemble IS the maximum. The report must say so.
        for k in (1, 5, 19):
            report = _report([float(i + 1) for i in range(k)])
            assert report.p95_degenerate
            with pytest.warns(RuntimeWarning, match="degenerates to worst_time"):
                assert report.p95_time == float(k)
            assert report.worst_time == float(k)

    def test_p95_distinct_from_worst_at_twenty_draws(self):
        report = _report([float(i + 1) for i in range(20)])
        assert not report.p95_degenerate
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert report.p95_time == 19.0

    def test_zero_draws_not_flagged_degenerate(self):
        report = _report([], deterministic=4.0)
        assert not report.p95_degenerate
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert report.p95_time == 4.0

    def test_zero_draws_fall_back_to_deterministic(self):
        report = _report([], deterministic=4.0)
        for which in ("mean", "p95", "worst"):
            assert report.objective(which) == 4.0

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown robust objective"):
            _report([1.0]).objective("median")
        assert set(ROBUST_OBJECTIVES) == {"nominal", "mean", "p95", "worst"}

    def test_most_critical_device_prefers_lowest_on_tie(self):
        report = dataclasses.replace(
            _report([1.0]), device_criticality=(0.5, 0.9, 0.9)
        )
        assert report.most_critical_device() == 1

    def test_to_dict_round_trips_the_summary(self):
        report = _report([1.0, 2.0])
        payload = report.to_dict()
        assert payload["draws"] == 2
        assert payload["mean_time"] == report.mean_time
        assert payload["device_criticality"] == [0.2, 0.8]
        assert payload["spec_digest"] == report.spec.content_digest()

    def test_describe_mentions_every_statistic(self):
        text = _report([1.0, 2.0]).describe()
        for token in ("nominal", "mean", "p95", "worst", "criticality"):
            assert token in text


class TestZeroPerturbationIdentity:
    def test_identity_ensemble_is_bit_identical_to_nominal(self):
        schedule = _schedule()
        nominal = simulate(schedule, cache=False).iteration_time
        report = evaluate_robustness(schedule, PerturbationSpec(), draws=5)
        assert report.nominal_time == nominal
        assert report.deterministic_time == nominal
        assert report.times == (nominal,) * 5
        for which in ROBUST_OBJECTIVES:
            assert report.objective(which) == nominal
            assert report.slowdown(which) == 1.0

    def test_identity_metadata_through_evaluate_plan(self):
        cluster = cluster_a(1)
        ctx = PlannerContext(
            cluster,
            model_by_name("bert-large"),
            TrainingConfig(sequence_length=512, global_batch_size=16),
            ParallelConfig(1, 4, 1),
        )
        plan = plan_adapipe(ctx)
        evaluation = evaluate_plan(
            plan, cluster, perturbation=PerturbationSpec(), robust_draws=4
        )
        meta = evaluation.plan.metadata
        assert meta["robust_draws"] == 4
        assert (
            meta["robust_nominal_time"]
            == meta["robust_mean_time"]
            == meta["robust_p95_time"]
            == meta["robust_worst_time"]
        )
        assert len(meta["robust_criticality"]) == 4
        assert all(c >= 0.0 for c in meta["robust_criticality"])


class TestMonotonicity:
    def test_slowing_one_device_never_speeds_iteration(self):
        schedule = _schedule()
        previous = None
        for factor in (1.0, 1.05, 1.2, 1.5, 2.0, 4.0):
            report = evaluate_robustness(
                schedule, PerturbationSpec.build({2: factor}), draws=0
            )
            if previous is not None:
                assert report.deterministic_time >= previous
            previous = report.deterministic_time

    def test_stall_never_speeds_iteration(self):
        schedule = _schedule()
        base = simulate(schedule, cache=False).iteration_time
        spec = PerturbationSpec.build(
            stalls=[TransientStall(0, 2.0, first_task=0, length=3)]
        )
        report = evaluate_robustness(schedule, spec, draws=0)
        assert report.deterministic_time >= base


class TestSeedDeterminism:
    def test_reports_are_pure_functions_of_their_inputs(self):
        schedule = _schedule()
        spec = PerturbationSpec.build({1: 1.3}, jitter_sigma=0.2, seed=7)
        first = evaluate_robustness(schedule, spec, draws=6)
        second = evaluate_robustness(schedule, spec, draws=6)
        assert first == second

    def test_distinct_seeds_draw_distinct_ensembles(self):
        schedule = _schedule()
        a = evaluate_robustness(
            schedule, PerturbationSpec.build(jitter_sigma=0.2, seed=0), draws=4
        )
        b = evaluate_robustness(
            schedule, PerturbationSpec.build(jitter_sigma=0.2, seed=99), draws=4
        )
        assert a.times != b.times

    def test_draws_reseed_the_jitter_only(self):
        # Ensemble members differ (jitter re-draws) while the nominal and
        # deterministic components are shared.
        schedule = _schedule()
        spec = PerturbationSpec.build({0: 1.5}, jitter_sigma=0.2, seed=3)
        report = evaluate_robustness(schedule, spec, draws=4)
        assert len(set(report.times)) > 1


class TestCriticality:
    def test_criticality_is_non_negative(self):
        schedule = _schedule()
        spec = PerturbationSpec.build({2: 1.5}, jitter_sigma=0.1, seed=1)
        report = evaluate_robustness(schedule, spec, draws=0)
        assert all(c >= 0.0 for c in report.device_criticality)
        assert len(report.device_criticality) == schedule.num_devices

    def test_single_stage_pipeline_is_fully_critical(self):
        # With one device every task scales with its factor, so the
        # normalised marginal slowdown is exactly 1.
        schedule = _schedule(p=1, n=4, hop=0.0)
        report = evaluate_robustness(schedule, PerturbationSpec(), draws=0)
        assert report.device_criticality[0] == pytest.approx(1.0)

    def test_derated_device_dominates_criticality(self):
        schedule = _schedule()
        report = evaluate_robustness(
            schedule, PerturbationSpec.build({2: 2.0}), draws=0
        )
        assert report.most_critical_device() == 2

    def test_invalid_arguments_rejected(self):
        schedule = _schedule()
        with pytest.raises(ValueError, match="draws"):
            evaluate_robustness(schedule, PerturbationSpec(), draws=-1)
        with pytest.raises(ValueError, match="epsilon"):
            evaluate_robustness(
                schedule, PerturbationSpec(), draws=0, criticality_epsilon=0.0
            )


class TestClusterPerturbation:
    def test_reads_per_rank_factors(self):
        cluster = cluster_a(1).with_device_factors((1.0, 1.25, 1.5, 1.0))
        spec = cluster_perturbation(cluster, 4, jitter_sigma=0.1, seed=2)
        assert spec.device_factors == ((1, 1.25), (2, 1.5))
        assert spec.jitter_sigma == 0.1 and spec.seed == 2

    def test_device_slowdown_is_the_fallback(self):
        cluster = cluster_a(1)
        derated = dataclasses.replace(
            cluster, device=dataclasses.replace(cluster.device, slowdown=1.3)
        )
        assert derated.heterogeneous
        assert derated.device_factor(0) == 1.3
        spec = cluster_perturbation(derated, 2)
        assert spec.device_factors == ((0, 1.3), (1, 1.3))

    def test_homogeneous_cluster_yields_identity(self):
        spec = cluster_perturbation(cluster_a(1), 4)
        assert spec.is_identity()

    def test_factor_validation(self):
        with pytest.raises(ValueError, match="> 0"):
            cluster_a(1).with_device_factors((1.0, 0.0))
        with pytest.raises(ValueError, match="> 0"):
            dataclasses.replace(cluster_a(1).device, slowdown=-1.0)


class TestRobustMetadata:
    def test_metadata_mirrors_the_report(self):
        report = evaluate_robustness(
            _schedule(), PerturbationSpec.build({0: 1.5}), draws=3
        )
        meta = robust_metadata(report)
        assert meta["robust_nominal_time"] == report.nominal_time
        assert meta["robust_p95_time"] == report.p95_time
        assert meta["robust_worst_time"] == report.worst_time
        assert meta["robust_spec_digest"] == report.spec.content_digest()
        assert meta["robust_criticality"] == list(report.device_criticality)


# The pinned heterogeneous fixture: BERT-large at seq 4096 under a tight
# memory limit, four ranks with the last two derated 1.5x. Nominally the
# deeper pipeline (1, 4, 1) wins; under the perturbation ensemble its p95
# loses to (1, 2, 2), which keeps all work on the healthy ranks.
def _flip_fixture():
    cluster = cluster_a(1).with_device_factors((1.0, 1.0, 1.5, 1.5))
    spec = model_by_name("bert-large")
    train = TrainingConfig(sequence_length=4096, global_batch_size=16)
    strategies = [ParallelConfig(1, 2, 2), ParallelConfig(1, 4, 1)]
    return cluster, spec, train, strategies


class TestRobustSweep:
    def test_robust_objective_requires_perturbation(self):
        cluster, spec, train, strategies = _flip_fixture()
        with pytest.raises(ValueError, match="PerturbationSpec"):
            run_sweep(
                cluster, spec, train, 4, strategies=strategies,
                config=SweepConfig(workers=1, robust_objective="p95"),
            )

    def test_unknown_objective_rejected(self):
        cluster, spec, train, strategies = _flip_fixture()
        with pytest.raises(ValueError, match="unknown robust objective"):
            run_sweep(
                cluster, spec, train, 4, strategies=strategies,
                config=SweepConfig(workers=1, robust_objective="median"),
            )

    def test_p95_objective_flips_the_selected_plan(self):
        cluster, spec, train, strategies = _flip_fixture()
        limit = int(2.0 * 1024**3)
        nominal = run_sweep(
            cluster, spec, train, 4, strategies=strategies,
            config=SweepConfig(workers=1), memory_limit_bytes=limit,
        )
        assert nominal.best.parallel == ParallelConfig(1, 4, 1)

        pert = cluster_perturbation(cluster, 4, jitter_sigma=0.03, seed=5)
        robust = run_sweep(
            cluster, spec, train, 4, strategies=strategies,
            config=SweepConfig(
                workers=1, robust_objective="p95",
                perturbation=pert, robust_draws=8,
            ),
            memory_limit_bytes=limit,
        )
        assert robust.best.parallel == ParallelConfig(1, 2, 2)
        assert robust.best.metadata["robust_objective"] == "p95"
        # Every planned strategy carries the ensemble summary, and the
        # selection is explained by it: the nominal winner's p95 is worse.
        by_parallel = {plan.parallel: plan for plan in robust.plans}
        deep = by_parallel[ParallelConfig(1, 4, 1)]
        shallow = by_parallel[ParallelConfig(1, 2, 2)]
        assert deep.metadata["robust_nominal_time"] < (
            shallow.metadata["robust_nominal_time"]
        )
        assert deep.metadata["robust_p95_time"] > (
            shallow.metadata["robust_p95_time"]
        )

    def test_robust_sweep_shares_eval_cache_with_nominal_soundly(self):
        # Regression for the StageEvalCache fingerprint audit: the robust
        # inputs (robust_objective, PerturbationSpec, robust_draws) are
        # deliberately absent from `evaluator_fingerprint` because robust
        # mode only re-ranks already-planned strategies by re-simulating
        # them — cached StageEvals hold nominal DP results that no robust
        # input reaches. Sharing one cache between a nominal and a robust
        # sweep must therefore (a) actually hit, and (b) change nothing
        # about the robust sweep's outcome relative to a cold cache.
        from repro.core.isomorphism import StageEvalCache
        from repro.core.serialize import plan_signature

        cluster, spec, train, strategies = _flip_fixture()
        limit = int(2.0 * 1024**3)
        pert = cluster_perturbation(cluster, 4, jitter_sigma=0.03, seed=5)
        robust_config = SweepConfig(
            workers=1, robust_objective="p95",
            perturbation=pert, robust_draws=8,
        )

        cold = run_sweep(
            cluster, spec, train, 4, strategies=strategies,
            config=robust_config, memory_limit_bytes=limit,
        )

        shared = StageEvalCache()
        run_sweep(  # warm the cache with a plain nominal sweep
            cluster, spec, train, 4, strategies=strategies,
            config=SweepConfig(workers=1), memory_limit_bytes=limit,
            eval_cache=shared,
        )
        assert shared.misses > 0
        hits_before = shared.hits
        warm = run_sweep(
            cluster, spec, train, 4, strategies=strategies,
            config=robust_config, memory_limit_bytes=limit,
            eval_cache=shared,
        )
        # (a) the robust sweep reused the nominal sweep's evaluations ...
        assert shared.hits > hits_before
        # ... and (b) produced the same plans and robust statistics.
        assert plan_signature(warm.best) == plan_signature(cold.best)
        for key in (
            "robust_objective",
            "robust_nominal_time",
            "robust_mean_time",
            "robust_p95_time",
            "robust_worst_time",
        ):
            assert warm.best.metadata[key] == cold.best.metadata[key]

    def test_robust_report_via_plan_schedule(self):
        # The acceptance path `adapipe robustness` exercises: plan, build
        # the schedule, evaluate the cluster-implied perturbation — and
        # the result is deterministic.
        cluster, spec, train, _ = _flip_fixture()
        ctx = PlannerContext(
            cluster, spec, train, ParallelConfig(1, 4, 1),
            memory_limit_bytes=int(2.0 * 1024**3),
        )
        plan = plan_adapipe(ctx)
        schedule = build_schedule_for_plan(plan, cluster, "1f1b")
        pert = cluster_perturbation(cluster, 4, jitter_sigma=0.03, seed=5)
        first = evaluate_robustness(schedule, pert, draws=8)
        second = evaluate_robustness(schedule, pert, draws=8)
        assert first == second
        # The derated ranks carry the highest straggler criticality.
        assert first.most_critical_device() in (2, 3)
