"""Golden-file regression tests.

The analytic experiments are fully deterministic, so their rendered tables
are pinned byte-for-byte under ``expected_results/``. A diff here means the
cost model changed — intentionally (regenerate the goldens and review the
EXPERIMENTS.md numbers) or not (a regression).

Regenerate with:
    python -c "from tests.test_expected_results import regenerate; regenerate()"
"""

import pathlib

import pytest

from repro.experiments import run_experiment

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "expected_results"
PINNED = ("figure1", "figure2", "figure4")


def regenerate() -> None:  # pragma: no cover - maintenance helper
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in PINNED:
        result = run_experiment(name, fast=True)
        (GOLDEN_DIR / f"{name}.txt").write_text(result.render() + "\n")


@pytest.mark.parametrize("name", PINNED)
def test_experiment_matches_golden(name):
    golden = (GOLDEN_DIR / f"{name}.txt").read_text()
    current = run_experiment(name, fast=True).render() + "\n"
    assert current == golden, (
        f"{name} diverged from expected_results/{name}.txt — if the cost "
        "model change is intentional, regenerate the goldens and update "
        "EXPERIMENTS.md"
    )


def test_golden_files_exist():
    for name in PINNED:
        assert (GOLDEN_DIR / f"{name}.txt").exists()
