"""Tests for the end-to-end planners and strategy search."""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import (
    PlannerContext,
    enumerate_parallel_strategies,
    plan_adapipe,
    plan_even_partitioning,
    plan_policy,
    search_best_strategy,
)
from repro.core.strategies import RecomputePolicy
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b


class TestPlanStructure:
    def test_adapipe_plan_covers_all_layers(self, gpt3_ctx):
        plan = plan_adapipe(gpt3_ctx)
        assert plan.feasible
        assert plan.stages[0].layer_start == 0
        assert plan.stages[-1].layer_end == len(gpt3_ctx.layers)
        for a, b in zip(plan.stages, plan.stages[1:]):
            assert a.layer_end == b.layer_start
            assert a.num_layers >= 1

    def test_adapipe_respects_memory_limit(self, gpt3_ctx):
        plan = plan_adapipe(gpt3_ctx)
        for stage in plan.stages:
            assert stage.memory.total_bytes <= gpt3_ctx.capacity_bytes * 1.001

    def test_even_partitioning_keeps_uniform_layout(self, gpt3_ctx):
        plan = plan_even_partitioning(gpt3_ctx)
        counts = plan.layer_counts()
        assert max(counts) - min(counts) <= 1

    def test_method_ordering(self, gpt3_ctx):
        """AdaPipe <= Even Partitioning <= DAPPLE-Full in modeled time."""
        adapipe = plan_adapipe(gpt3_ctx)
        even = plan_even_partitioning(gpt3_ctx)
        full = plan_policy(gpt3_ctx, RecomputePolicy.FULL, "DAPPLE-Full")
        assert adapipe.modeled_iteration_time <= even.modeled_iteration_time + 1e-9
        assert even.modeled_iteration_time <= full.modeled_iteration_time + 1e-9

    def test_saved_units_grow_with_stage(self, gpt3):
        """The Table 4 signature: under memory pressure, later stages save
        more (they keep fewer micro-batches in flight)."""
        train = TrainingConfig(sequence_length=8192, global_batch_size=16)
        ctx = PlannerContext(
            cluster_a(8),
            gpt3,
            train,
            ParallelConfig(8, 8, 1),
            memory_limit_bytes=60 * 1024**3,
        )
        plan = plan_even_partitioning(ctx)
        assert plan.feasible
        saved = plan.saved_unit_counts()
        assert saved[0] < saved[4]  # pressure visibly relaxes along the pipe
        assert all(a <= b + 5 for a, b in zip(saved, saved[1:]))

    def test_policy_plan_labels(self, gpt3_ctx):
        plan = plan_policy(gpt3_ctx, RecomputePolicy.NONE, "DAPPLE-Non")
        assert plan.method == "DAPPLE-Non"
        assert plan.hidden_size == gpt3_175b().hidden_size

    def test_infeasible_context_flags_plan(self, gpt3):
        train = TrainingConfig(sequence_length=16384, global_batch_size=8)
        ctx = PlannerContext(
            cluster_a(4),
            gpt3,
            train,
            ParallelConfig(8, 4, 1),
            memory_limit_bytes=20 * 1024**3,  # far too small for GPT-3/4
        )
        plan = plan_adapipe(ctx)
        assert not plan.feasible


class TestStrategyEnumeration:
    @pytest.fixture
    def train(self):
        return TrainingConfig(sequence_length=4096, global_batch_size=128)

    def test_all_products_match_device_count(self, train):
        strategies = enumerate_parallel_strategies(
            64, cluster_a(), gpt3_175b(), train
        )
        assert strategies
        for s in strategies:
            assert s.num_devices == 64

    def test_tensor_parallel_capped_at_node(self, train):
        for s in enumerate_parallel_strategies(64, cluster_a(), gpt3_175b(), train):
            assert s.tensor_parallel <= 8

    def test_pipeline_at_least_two(self, train):
        for s in enumerate_parallel_strategies(64, cluster_a(), gpt3_175b(), train):
            assert s.pipeline_parallel >= 2

    def test_contains_papers_table3_strategies(self, train):
        strategies = {
            s.as_tuple()
            for s in enumerate_parallel_strategies(64, cluster_a(), gpt3_175b(), train)
        }
        for expected in [(1, 32, 2), (2, 16, 2), (4, 8, 2), (8, 8, 1), (8, 4, 2)]:
            assert expected in strategies

    def test_data_parallel_divides_batch(self):
        train = TrainingConfig(sequence_length=4096, global_batch_size=6)
        for s in enumerate_parallel_strategies(16, cluster_a(2), gpt3_175b(), train):
            assert train.global_batch_size % s.data_parallel == 0

    def test_indivisible_batch_excludes_strategy(self):
        """batch=6 does not divide by d=4, so (1, 4, 4) must be absent even
        though it is a valid 16-device layout otherwise."""
        train = TrainingConfig(sequence_length=4096, global_batch_size=6)
        tuples = {
            s.as_tuple()
            for s in enumerate_parallel_strategies(16, cluster_a(2), gpt3_175b(), train)
        }
        assert (1, 4, 4) not in tuples
        assert all(d in (1, 2, 3, 6) for _, _, d in tuples)

    def test_tensor_parallel_capped_by_devices_per_node(self, train):
        """A node with 4 slots caps t at 4 even when 8 would divide evenly."""
        import dataclasses

        narrow = dataclasses.replace(cluster_a(4), devices_per_node=4)
        strategies = enumerate_parallel_strategies(16, narrow, gpt3_175b(), train)
        assert strategies
        assert all(s.tensor_parallel <= 4 for s in strategies)

    def test_pipeline_capped_by_layer_count(self, tiny_spec, tiny_train):
        """tiny_gpt has an 8-layer sequence: p = 16 never appears, p = 8 may."""
        strategies = enumerate_parallel_strategies(
            32, cluster_a(4), tiny_spec, tiny_train
        )
        assert strategies
        num_layers = 8  # embed + 3 x (att, ffn) + head
        assert all(s.pipeline_parallel <= num_layers for s in strategies)
        assert any(s.pipeline_parallel == num_layers for s in strategies)


class TestTooManyStages:
    """p > L: planners answer with an infeasible plan, not a crash."""

    @pytest.fixture
    def oversized_ctx(self, tiny_spec, tiny_train):
        # 8-layer sequence split over a 16-stage pipeline: impossible.
        return PlannerContext(
            cluster_a(2),
            tiny_spec,
            tiny_train,
            ParallelConfig(1, 16, 1),
            memory_limit_bytes=8 * 1024**2,
        )

    @pytest.mark.parametrize(
        "planner", [plan_adapipe, plan_even_partitioning],
        ids=["adapipe", "even"],
    )
    def test_planners_return_infeasible_plan(self, oversized_ctx, planner):
        plan = planner(oversized_ctx)
        assert not plan.feasible
        assert plan.stages == ()
        assert plan.modeled_iteration_time is None
        assert "stages" in plan.metadata["infeasible_reason"]

    def test_policy_planner_returns_infeasible_plan(self, oversized_ctx):
        plan = plan_policy(oversized_ctx, RecomputePolicy.FULL, "DAPPLE-Full")
        assert not plan.feasible
        assert plan.stages == ()

    def test_infeasible_plan_serializes(self, oversized_ctx):
        from repro.core.serialize import plan_from_dict, plan_to_dict

        plan = plan_adapipe(oversized_ctx)
        restored = plan_from_dict(plan_to_dict(plan))
        assert not restored.feasible
        assert restored.stages == ()


class TestSearchBestStrategy:
    def test_returns_feasible_best(self, gpt3):
        train = TrainingConfig(sequence_length=2048, global_batch_size=16)
        strategies = [ParallelConfig(8, 8, 1), ParallelConfig(4, 16, 1)]
        best, plans = search_best_strategy(
            cluster_a(8), gpt3, train, 64, plan_even_partitioning, strategies
        )
        assert best is not None
        assert len(plans) == 2
        times = [
            p.modeled_iteration_time for p in plans if p.modeled_iteration_time
        ]
        assert best.modeled_iteration_time == min(times)

    def test_no_feasible_strategy_returns_none(self, gpt3):
        train = TrainingConfig(sequence_length=16384, global_batch_size=16)
        strategies = [ParallelConfig(1, 2, 16)]  # 175B on 2-stage pipeline: OOM
        best, plans = search_best_strategy(
            cluster_a(4), gpt3, train, 32, plan_adapipe, strategies
        )
        assert best is None
        assert not plans[0].feasible
