"""Failure-injection tests: the system degrades loudly, not silently.

Each test injects a specific fault — numeric overflow, corrupted schedules,
malformed plans, impossible budgets — and asserts the corresponding
containment behaviour (skip-and-backoff, typed errors, infeasibility
flags) rather than silent corruption.
"""

import numpy as np
import pytest

from repro.config import ConfigError, ParallelConfig, TrainingConfig
from repro.core.recompute_dp import UnitItem, optimize_stage_recompute
from repro.core.search import PlannerContext, plan_adapipe
from repro.core.serialize import PlanFormatError, plan_from_dict, plan_to_dict
from repro.hardware.cluster import cluster_a
from repro.pipeline.simulator import SimulationError, simulate
from repro.pipeline.tasks import Schedule, Task, TaskKey, TaskKind
from repro.training.modules import Parameter, build_model
from repro.training.optimizer import Adam, LossScaler


class TestNumericFaults:
    def test_loss_scaler_contains_gradient_overflow(self):
        """An inf gradient skips the step and halves the scale; training
        resumes on the next finite gradient."""
        param = Parameter(np.array([1.0]))
        adam = Adam([("x", param)], lr=0.1)
        scaler = LossScaler(scale=1024.0)

        param.grad = np.array([np.inf])
        assert not scaler.unscale_and_check([("x", param)])
        assert scaler.scale == 512.0
        adam.zero_grad()
        assert param.data[0] == 1.0  # step skipped, weights untouched

        param.grad = np.array([512.0])
        assert scaler.unscale_and_check([("x", param)])
        adam.step()
        assert param.data[0] != 1.0  # recovered

    def test_nan_gradient_detected(self):
        param = Parameter(np.array([1.0]))
        param.grad = np.array([np.nan])
        scaler = LossScaler(scale=2.0)
        assert not scaler.unscale_and_check([("x", param)])

    def test_cross_entropy_survives_extreme_logits(self):
        from repro.training.ops import cross_entropy

        logits = np.zeros((1, 2, 4))
        logits[0, 0, 0] = 1e9  # would overflow a naive softmax
        logits[0, 1, 1] = -1e9
        loss, _ = cross_entropy(logits, np.array([[0, 0]]))
        assert np.isfinite(loss)


class TestScheduleFaults:
    def test_cyclic_dependencies_deadlock_loudly(self):
        a_key = TaskKey(0, 0, 0, TaskKind.FORWARD)
        b_key = TaskKey(0, 1, 0, TaskKind.FORWARD)
        schedule = Schedule(
            name="cycle",
            num_devices=2,
            device_tasks=[
                [Task(key=a_key, device=0, duration=1.0, deps=(b_key,))],
                [Task(key=b_key, device=1, duration=1.0, deps=(a_key,))],
            ],
        )
        with pytest.raises(SimulationError, match="deadlock"):
            simulate(schedule)

    def test_misordered_device_queue_deadlocks(self):
        """A device whose own queue puts a backward before its forward can
        never progress — the simulator reports it instead of hanging."""
        fwd = TaskKey(0, 0, 0, TaskKind.FORWARD)
        bwd = TaskKey(0, 0, 0, TaskKind.BACKWARD)
        schedule = Schedule(
            name="misordered",
            num_devices=1,
            device_tasks=[
                [
                    Task(key=bwd, device=0, duration=1.0, deps=(fwd,)),
                    Task(key=fwd, device=0, duration=1.0),
                ]
            ],
        )
        with pytest.raises(SimulationError, match="deadlock"):
            simulate(schedule)


class TestPlannerFaults:
    def test_impossible_budget_is_flagged_not_crashed(self, gpt3):
        train = TrainingConfig(sequence_length=4096, global_batch_size=8)
        ctx = PlannerContext(
            cluster_a(8),
            gpt3,
            train,
            ParallelConfig(8, 8, 1),
            memory_limit_bytes=1.0,  # one byte
        )
        plan = plan_adapipe(ctx)
        assert not plan.feasible
        assert plan.modeled_iteration_time is None

    def test_knapsack_negative_budget(self):
        result = optimize_stage_recompute(
            [UnitItem("u", 1.0, 10.0, 1)], budget_bytes=-5.0, in_flight=1
        )
        assert not result.feasible

    def test_corrupted_plan_document_rejected(self, tiny_ctx):
        data = plan_to_dict(plan_adapipe(tiny_ctx))
        data["stages"][0]["layer_end"] = 10_000  # stages no longer contiguous
        with pytest.raises(PlanFormatError):
            plan_from_dict(data)

    def test_strategy_validation_rejects_nonsense(self):
        with pytest.raises(ConfigError):
            ParallelConfig(0, 8, 1)
        with pytest.raises(ConfigError):
            TrainingConfig(sequence_length=4096, global_batch_size=8, zero_stage=7)


class TestExecutorFaults:
    def test_executor_refuses_short_batch(self, tiny_ctx, tiny_spec):
        plan = plan_adapipe(tiny_ctx)
        model = build_model(tiny_spec, seed=0)
        from repro.training.pipeline_exec import PipelineExecutor

        executor = PipelineExecutor(model, plan)
        bad_tokens = np.zeros((1, 8), dtype=int)
        with pytest.raises(ValueError, match="micro-batches"):
            executor.train_step(bad_tokens, bad_tokens)

    def test_head_without_targets_raises(self, tiny_spec):
        model = build_model(tiny_spec, seed=0)
        with pytest.raises(RuntimeError, match="set_targets"):
            model.layers[-1].forward(np.zeros((1, 4, tiny_spec.hidden_size)))
