"""Tests for the tape autodiff engine: numeric gradient checks and
checkpointing semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training import autograd as ag
from repro.training.autograd import Tensor, checkpoint, no_grad

RNG = np.random.default_rng(7)
EPS = 1e-6
TOL = 1e-5


def numeric_grad(fn, x: Tensor) -> np.ndarray:
    grad = np.zeros_like(x.data)
    flat = x.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        up = float(fn().data.sum())
        flat[i] = orig - EPS
        down = float(fn().data.sum())
        flat[i] = orig
        gflat[i] = (up - down) / (2 * EPS)
    return grad


def check(fn, *tensors):
    for tensor in tensors:
        tensor.grad = None
    out = fn()
    out.backward(np.ones_like(out.data))
    for tensor in tensors:
        expected = numeric_grad(fn, tensor)
        assert np.allclose(tensor.grad, expected, atol=TOL), fn


class TestPrimitives:
    def test_add_broadcast(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        check(lambda: ag.add(a, b), a, b)

    def test_mul(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        check(lambda: ag.mul(a, b), a, b)

    def test_matmul_batched(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        check(lambda: ag.matmul(a, b), a, b)

    def test_power(self):
        a = Tensor(RNG.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        check(lambda: ag.power(a, 3.0), a)
        check(lambda: ag.power(a, -0.5), a)

    @pytest.mark.parametrize("op", [ag.exp, ag.tanh, ag.sigmoid])
    def test_elementwise(self, op):
        a = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        check(lambda: op(a), a)

    def test_log(self):
        a = Tensor(RNG.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check(lambda: ag.log(a), a)

    def test_sum_axes(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        check(lambda: ag.sum_(a), a)
        check(lambda: ag.sum_(a, axis=1), a)
        check(lambda: ag.sum_(a, axis=-1, keepdims=True), a)

    def test_mean(self):
        a = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        check(lambda: ag.mean(a, axis=-1, keepdims=True), a)

    def test_reshape_transpose(self):
        a = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        check(lambda: ag.reshape(a, (6, 4)), a)
        check(lambda: ag.transpose(a, (2, 0, 1)), a)

    def test_where_const(self):
        a = Tensor(RNG.normal(size=(3, 3)), requires_grad=True)
        condition = RNG.normal(size=(3, 3)) > 0
        check(lambda: ag.where_const(condition, a, -5.0), a)

    def test_maximum_const(self):
        a = Tensor(RNG.normal(size=(8,)) + 0.01, requires_grad=True)
        check(lambda: ag.maximum_const(a, 0.0), a)

    def test_max_keepdim(self):
        a = Tensor(RNG.normal(size=(3, 5)), requires_grad=True)
        check(lambda: ag.max_keepdim(a, -1), a)

    def test_gather_rows(self):
        table = Tensor(RNG.normal(size=(10, 4)), requires_grad=True)
        indices = np.array([[1, 2, 2], [0, 9, 1]])
        check(lambda: ag.gather_rows(table, indices), table)

    def test_take_along_last(self):
        a = Tensor(RNG.normal(size=(2, 3, 5)), requires_grad=True)
        indices = RNG.integers(0, 5, size=(2, 3))
        check(lambda: ag.take_along_last(a, indices), a)

    def test_softmax_rows_sum_to_one(self):
        a = Tensor(RNG.normal(size=(4, 6)), requires_grad=True)
        probs = ag.softmax(a)
        assert np.allclose(probs.data.sum(axis=-1), 1.0)
        check(lambda: ag.softmax(a), a)


class TestTapeSemantics:
    def test_grad_accumulates_over_fanout(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = ag.add(ag.mul(a, a), a)  # a^2 + a -> grad 2a + 1 = 5
        out.backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(5.0)

    def test_backward_twice_accumulates_on_leaf(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        ag.mul(a, Tensor(2.0)).backward(np.array([1.0]))
        ag.mul(a, Tensor(2.0)).backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(4.0)

    def test_no_grad_suspends_taping(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            out = ag.mul(a, a)
        assert not out.requires_grad and out.is_leaf

    def test_scalar_required_for_implicit_backward(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        with pytest.raises(ValueError):
            ag.mul(a, a).backward()

    def test_detach_cuts_graph(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = ag.mul(a.detach(), Tensor(3.0))
        assert not out.requires_grad

    def test_operator_sugar(self):
        a = Tensor(np.array([4.0]), requires_grad=True)
        out = (a * 2 + 1 - 3) / 2  # (2a - 2)/2 -> grad 1
        out.backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(1.0)
        assert out.data[0] == pytest.approx(3.0)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_deep_chain(self, depth):
        a = Tensor(np.array([1.1]), requires_grad=True)
        out = a
        for _ in range(depth):
            out = ag.mul(out, Tensor(2.0))
        out.backward(np.array([1.0]))
        assert a.grad[0] == pytest.approx(2.0**depth)


class TestCheckpoint:
    def test_gradients_identical_to_plain_execution(self):
        w = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        x = Tensor(RNG.normal(size=(2, 4)), requires_grad=True)

        def block(value):
            return ag.tanh(ag.matmul(value, w))

        plain = ag.sum_(block(x))
        plain.backward(np.array(1.0))
        plain_wg, plain_xg = w.grad.copy(), x.grad.copy()
        w.grad = x.grad = None

        ckpt = ag.sum_(checkpoint(block, x))
        ckpt.backward(np.array(1.0))
        assert np.array_equal(ckpt.data, plain.data)
        assert np.array_equal(w.grad, plain_wg)
        assert np.array_equal(x.grad, plain_xg)

    def test_multi_input_checkpoint(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)

        def combine(x, y):
            return ag.mul(ag.exp(x), ag.tanh(y))

        out = ag.sum_(checkpoint(combine, a, b))
        out.backward(np.array(1.0))
        ckpt_a, ckpt_b = a.grad.copy(), b.grad.copy()
        a.grad = b.grad = None
        ag.sum_(combine(a, b)).backward(np.array(1.0))
        assert np.array_equal(ckpt_a, a.grad)
        assert np.array_equal(ckpt_b, b.grad)

    def test_checkpointed_forward_retains_no_tape(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        out = checkpoint(lambda x: ag.mul(ag.mul(x, x), x), a)
        # Only the checkpoint boundary is on the tape.
        assert out._parents == (a,)

    def test_checkpoint_under_no_grad_is_plain_eval(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        with no_grad():
            out = checkpoint(lambda x: ag.mul(x, x), a)
        assert not out.requires_grad


class TestSeededDropout:
    def test_dropout_gradcheck(self):
        a = Tensor(RNG.normal(size=(6, 6)), requires_grad=True)
        check(lambda: ag.dropout(a, 0.4, seed=5), a)

    def test_zero_prob_identity(self):
        a = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        assert ag.dropout(a, 0.0, seed=1) is a

    def test_checkpoint_with_seeded_dropout_is_exact(self):
        w = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        x = Tensor(RNG.normal(size=(2, 4)), requires_grad=True)

        def block(value):
            return ag.dropout(ag.tanh(ag.matmul(value, w)), 0.3, seed=42)

        plain = ag.sum_(block(x))
        plain.backward(np.array(1.0))
        plain_grad = w.grad.copy()
        w.grad = x.grad = None

        ckpt = ag.sum_(checkpoint(block, x))
        ckpt.backward(np.array(1.0))
        assert np.array_equal(ckpt.data, plain.data)
        assert np.array_equal(w.grad, plain_grad)

    def test_global_rng_dropout_breaks_checkpoint(self):
        """The cautionary tale: dropout drawing from a shared generator
        gives checkpointing a *different* mask on replay, so the forward
        value and the gradient disagree — exactly why real frameworks
        stash RNG state around checkpoints."""
        shared_rng = np.random.default_rng(0)
        w = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        x = Tensor(RNG.normal(size=(2, 4)), requires_grad=True)

        def leaky_block(value):
            hidden = ag.tanh(ag.matmul(value, w))
            mask = shared_rng.random(hidden.data.shape) >= 0.5
            return ag.mul(hidden, Tensor(mask * 2.0))

        out = checkpoint(leaky_block, x)
        forward_value = out.data.copy()
        ag.sum_(out).backward(np.array(1.0))
        # Replay consumed fresh randomness: recomputed forward != stored.
        replayed = leaky_block(x.detach())
        assert not np.array_equal(forward_value, replayed.data)
