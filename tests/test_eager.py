"""Tests for the eager transformer: cross-engine equivalence.

The repository's two engines mirror the paper's MindSpore (graph) and
PyTorch (eager) implementations. These tests pin their agreement: same
weights, same batch -> identical loss and machine-epsilon gradients, with
and without unit-granular checkpointing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.spec import tiny_gpt, tiny_llama
from repro.training.eager import EagerTransformer
from repro.training.modules import build_model

GRAD_TOL = 1e-12

EAGER_UNITS = (
    "attn.norm", "attn.q", "attn.k", "attn.v", "attn.core",
    "ffn.norm", "ffn.in", "ffn.act", "head.norm",
)


def _batch(spec, seed=0, batch=2, seq=8):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, spec.vocab_size, size=(batch, seq)),
        rng.integers(0, spec.vocab_size, size=(batch, seq)),
    )


def _grad_gap(model, eager):
    gaps = []
    for name, parameter in model.named_parameters():
        manual = parameter.grad
        tape = eager.params[name].grad
        if manual is None and tape is None:
            continue
        gaps.append(np.abs(manual - tape).max())
    return max(gaps)


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("spec_fn", [tiny_gpt, tiny_llama])
    def test_loss_and_gradients_match(self, spec_fn):
        spec = spec_fn(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=3)
        tokens, targets = _batch(spec)

        manual_loss = model.loss_and_grad(tokens, targets)
        eager = EagerTransformer(model)
        loss = eager.loss(tokens, targets)
        loss.backward()

        assert float(loss.data) == pytest.approx(manual_loss, abs=1e-12)
        assert _grad_gap(model, eager) < GRAD_TOL

    def test_weights_are_shared_not_copied(self):
        spec = tiny_gpt(num_layers=1, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=0)
        eager = EagerTransformer(model)
        name, parameter = next(iter(model.named_parameters()))
        assert eager.params[name].data is parameter.data

    def test_sync_grads_to_model(self):
        spec = tiny_gpt(num_layers=1, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=0)
        eager = EagerTransformer(model)
        tokens, targets = _batch(spec)
        eager.loss(tokens, targets).backward()
        eager.sync_grads_to_model()
        for name, parameter in model.named_parameters():
            tape_grad = eager.params[name].grad
            if tape_grad is None:
                assert parameter.grad is None
            else:
                assert np.array_equal(parameter.grad, tape_grad)


class TestEagerCheckpointing:
    def test_full_checkpoint_is_loss_exact(self):
        spec = tiny_llama(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=5)
        eager = EagerTransformer(model)
        tokens, targets = _batch(spec, seed=1)
        plain = eager.loss(tokens, targets)
        plain.backward()
        plain_grads = {n: t.grad.copy() for n, t in eager.params.items()
                       if t.grad is not None}
        eager.zero_grad()
        ckpt = eager.loss(tokens, targets, [set() for _ in model.layers])
        ckpt.backward()
        assert float(ckpt.data) == float(plain.data)
        for name, grad in plain_grads.items():
            assert np.allclose(eager.params[name].grad, grad, atol=1e-12), name

    @given(saved=st.sets(st.sampled_from(EAGER_UNITS)))
    @settings(max_examples=12, deadline=None)
    def test_any_saved_subset_matches_manual_engine(self, saved):
        spec = tiny_gpt(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=6)
        tokens, targets = _batch(spec, seed=2)
        manual_loss = model.loss_and_grad(tokens, targets)
        eager = EagerTransformer(model)
        loss = eager.loss(tokens, targets, [saved for _ in model.layers])
        loss.backward()
        assert float(loss.data) == pytest.approx(manual_loss, abs=1e-12)
        assert _grad_gap(model, eager) < GRAD_TOL
