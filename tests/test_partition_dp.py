"""Tests for Algorithm 1 (adaptive partitioning)."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isomorphism import StageEval
from repro.core.partition_dp import (
    evaluate_fixed_partition,
    even_boundaries,
    optimize_partition,
)
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts
from repro.profiler.memory import StageMemory


class FakeEvaluator:
    """Stage evaluator over explicit per-layer forward/backward costs.

    Optionally enforces a per-stage capacity: stage ``s`` holding ``k``
    layers is infeasible when ``(p - s) * k > capacity`` — a toy version of
    the in-flight activation constraint.
    """

    def __init__(self, f, b, num_stages, capacity=None):
        self.f = list(f)
        self.b = list(b)
        self.p = num_stages
        self.capacity = capacity
        self.calls = 0

    @property
    def num_layers(self):
        return len(self.f)

    def evaluate(self, stage, i, j):
        self.calls += 1
        k = j - i + 1
        feasible = True
        if self.capacity is not None:
            feasible = (self.p - stage) * k <= self.capacity
        return StageEval(
            feasible=feasible,
            forward=sum(self.f[i : j + 1]),
            backward=sum(self.b[i : j + 1]),
            saved_unit_counts={},
            saved_bytes_per_microbatch=0.0,
            memory=StageMemory(0.0, 0.0, 0.0, self.p - stage),
        )


def _brute_force(evaluator, p, n):
    """Exhaustive search over all contiguous partitions, using the same
    cost recurrences via evaluate_fixed_partition."""
    L = evaluator.num_layers
    best = math.inf
    best_bounds = None
    for cuts in itertools.combinations(range(1, L), p - 1):
        bounds = tuple(
            (lo, hi)
            for lo, hi in zip((0,) + cuts, cuts + (L,))
        )
        result = evaluate_fixed_partition(evaluator, bounds, n)
        if result.feasible and result.total_time < best:
            best = result.total_time
            best_bounds = bounds
    return best, best_bounds


class TestEvenBoundaries:
    def test_even_division(self):
        assert even_boundaries(8, 4) == ((0, 2), (2, 4), (4, 6), (6, 8))

    def test_remainder_goes_to_early_stages(self):
        assert even_boundaries(10, 4) == ((0, 3), (3, 6), (6, 8), (8, 10))

    def test_single_stage(self):
        assert even_boundaries(5, 1) == ((0, 5),)

    def test_covers_everything(self):
        for L in range(1, 30):
            for p in range(1, L + 1):
                bounds = even_boundaries(L, p)
                assert bounds[0][0] == 0 and bounds[-1][1] == L
                for (a, b), (c, d) in zip(bounds, bounds[1:]):
                    assert b == c and b > a and d > c

    def test_more_stages_than_layers_rejected(self):
        """Silently emitting zero-layer stages would fake feasibility; the
        request must fail loudly (planners guard p > L before calling)."""
        with pytest.raises(ValueError, match="non-empty"):
            even_boundaries(3, 4)
        with pytest.raises(ValueError, match="non-empty"):
            even_boundaries(0, 1)


class TestCostModelExactness:
    @pytest.mark.parametrize("p,n,f,b", [(2, 4, 1.0, 2.0), (4, 8, 1.0, 2.0),
                                         (4, 8, 1.0, 3.0), (8, 16, 0.5, 1.0)])
    def test_uniform_stages_match_simulator(self, p, n, f, b):
        """The Section 5.1 model is exact for homogeneous 1F1B pipelines."""
        evaluator = FakeEvaluator([f] * p, [b] * p, p)
        bounds = even_boundaries(p, p)
        modeled = evaluate_fixed_partition(evaluator, bounds, n).total_time
        costs = [StageCosts(forward=f, backward=b) for _ in range(p)]
        simulated = simulate(one_f_one_b_schedule(costs, n)).iteration_time
        assert modeled == pytest.approx(simulated)

    def test_heterogeneous_model_close_to_simulator(self):
        f = [1.0, 1.5, 0.8, 1.2]
        b = [2.0, 2.5, 1.9, 2.2]
        evaluator = FakeEvaluator(f, b, 4)
        modeled = evaluate_fixed_partition(
            evaluator, even_boundaries(4, 4), 8
        ).total_time
        costs = [StageCosts(forward=fi, backward=bi) for fi, bi in zip(f, b)]
        simulated = simulate(one_f_one_b_schedule(costs, 8)).iteration_time
        assert modeled == pytest.approx(simulated, rel=0.1)


class TestOptimizePartition:
    def test_uniform_layers_get_even_partition(self):
        evaluator = FakeEvaluator([1.0] * 8, [2.0] * 8, 4)
        result = optimize_partition(evaluator, 4, 8)
        assert result.feasible
        assert result.boundaries == even_boundaries(8, 4)

    def test_result_total_is_self_consistent(self):
        evaluator = FakeEvaluator([1.0, 2.0, 1.0, 3.0, 1.0, 1.0], [2.0] * 6, 3)
        result = optimize_partition(evaluator, 3, 6)
        replay = evaluate_fixed_partition(evaluator, result.boundaries, 6)
        assert result.total_time == pytest.approx(replay.total_time)

    def test_matches_brute_force_on_small_instances(self):
        cases = [
            ([1.0, 2.0, 3.0, 1.0], [2.0, 4.0, 6.0, 2.0], 2, 4),
            ([1.0, 1.0, 5.0, 1.0, 1.0], [2.0, 2.0, 10.0, 2.0, 2.0], 2, 6),
            ([3.0, 1.0, 1.0, 1.0, 1.0, 3.0], [6.0, 2.0, 2.0, 2.0, 2.0, 6.0], 3, 8),
        ]
        for f, b, p, n in cases:
            evaluator = FakeEvaluator(f, b, p)
            result = optimize_partition(evaluator, p, n)
            best, _ = _brute_force(evaluator, p, n)
            assert result.total_time == pytest.approx(best)

    @given(
        data=st.data(),
        p=st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_beats_and_rarely_trails_brute_force(self, data, p):
        L = data.draw(st.integers(min_value=p, max_value=6))
        f = data.draw(
            st.lists(
                st.floats(min_value=0.1, max_value=5.0), min_size=L, max_size=L
            )
        )
        b = [2 * x for x in f]
        n = data.draw(st.integers(min_value=p, max_value=2 * p + 4))
        evaluator = FakeEvaluator(f, b, p)
        result = optimize_partition(evaluator, p, n)
        best, _ = _brute_force(evaluator, p, n)
        # Algorithm 1 is a heuristic DP ("near-optimal"): never better than
        # the exhaustive optimum. On dominant-layer instances in this draw
        # domain (e.g. f=[0.1, 0.1, 5.0, 0.1], p=3, n=3) the heuristic
        # measurably trails by up to ~1.45x — the phase decomposition
        # under-charges the bubble a lone heavy stage creates — so the
        # bound pins that measured worst case, not wishful 10%.
        assert result.total_time >= best - 1e-9
        assert result.total_time <= best * 1.5 + 1e-9

    def test_moves_layers_away_from_memory_pressed_stages(self):
        # Stage 0 keeps p in-flight copies; with capacity 6 and p=2 it can
        # hold at most 3 layers while stage 1 may hold up to 6.
        evaluator = FakeEvaluator([1.0] * 8, [2.0] * 8, 2, capacity=6)
        result = optimize_partition(evaluator, 2, 8)
        assert result.feasible
        sizes = [hi - lo for lo, hi in result.boundaries]
        assert sizes[0] <= 3

    def test_infeasible_when_no_partition_fits(self):
        evaluator = FakeEvaluator([1.0] * 4, [2.0] * 4, 2, capacity=1)
        result = optimize_partition(evaluator, 2, 4)
        assert not result.feasible
        assert result.total_time == math.inf

    def test_more_stages_than_layers_is_infeasible(self):
        evaluator = FakeEvaluator([1.0] * 3, [2.0] * 3, 5)
        assert not optimize_partition(evaluator, 5, 8).feasible

    def test_single_stage_takes_all(self):
        evaluator = FakeEvaluator([1.0] * 4, [2.0] * 4, 1)
        result = optimize_partition(evaluator, 1, 4)
        assert result.boundaries == ((0, 4),)
        # One stage: n micro-steps, no bubbles.
        assert result.total_time == pytest.approx(4 * (1 + 2) + (4 - 1) * 12.0)

    def test_fewer_micro_batches_than_stages_clamps_steady(self):
        evaluator = FakeEvaluator([1.0] * 4, [2.0] * 4, 4)
        result = optimize_partition(evaluator, 4, 2)
        assert result.feasible
        assert result.total_time > 0


class TestFixedPartitionEvaluation:
    def test_infeasible_stage_poisons_partition(self):
        evaluator = FakeEvaluator([1.0] * 6, [2.0] * 6, 3, capacity=3)
        bounds = ((0, 4), (4, 5), (5, 6))  # stage 0: 4 layers x 3 in-flight > 3
        result = evaluate_fixed_partition(evaluator, bounds, 6)
        assert not result.feasible

    def test_hop_time_increases_total(self):
        evaluator = FakeEvaluator([1.0] * 4, [2.0] * 4, 2)
        bounds = even_boundaries(4, 2)
        base = evaluate_fixed_partition(evaluator, bounds, 4).total_time
        slowed = evaluate_fixed_partition(evaluator, bounds, 4, hop_time=0.5).total_time
        assert slowed > base


class TestModelSimulatorConsistency:
    @given(
        data=st.data(),
        p=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_model_tracks_simulator_on_random_pipelines(self, data, p):
        """Property: the Section 5.1 analytic model stays within 15% of the
        event-driven simulator for arbitrary heterogeneous 1F1B pipelines
        (and is exact for homogeneous ones, tested above)."""
        f = data.draw(
            st.lists(
                st.floats(min_value=0.2, max_value=3.0), min_size=p, max_size=p
            )
        )
        b = data.draw(
            st.lists(
                st.floats(min_value=0.2, max_value=6.0), min_size=p, max_size=p
            )
        )
        n = data.draw(st.integers(min_value=p, max_value=3 * p + 2))
        evaluator = FakeEvaluator(f, b, p)
        modeled = evaluate_fixed_partition(
            evaluator, even_boundaries(p, p), n
        ).total_time
        costs = [StageCosts(forward=fi, backward=bi) for fi, bi in zip(f, b)]
        simulated = simulate(one_f_one_b_schedule(costs, n)).iteration_time
        # The phase decomposition is optimistic when one stage is far
        # slower than the rest (it charges the steady backlog only at
        # stage 0's micro-batch count) — exactly the imbalance AdaPipe's
        # partitioner removes, and the optimism grows with skew. The worst
        # corner of this generator's range (p=6, n=p, a single 30x-heavier
        # backward on the last stage) measures a 0.41 model/simulator
        # ratio; the bounds pin "never pessimistic beyond 5%" and that
        # adversarial floor.
        assert modeled <= simulated * 1.05
        assert modeled >= simulated * 0.40

    @given(
        data=st.data(),
        p=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_model_near_exact_on_balanced_pipelines(self, data, p):
        """On balanced pipelines (stage times within 10% of each other —
        the regime AdaPipe's partitioner produces) the model is within 3%
        of the simulator."""
        base_f = data.draw(st.floats(min_value=0.5, max_value=2.0))
        jitter = [
            data.draw(st.floats(min_value=0.95, max_value=1.05)) for _ in range(p)
        ]
        f = [base_f * j for j in jitter]
        b = [2.0 * base_f * j for j in jitter]
        n = data.draw(st.integers(min_value=p, max_value=3 * p + 2))
        evaluator = FakeEvaluator(f, b, p)
        modeled = evaluate_fixed_partition(
            evaluator, even_boundaries(p, p), n
        ).total_time
        costs = [StageCosts(forward=fi, backward=bi) for fi, bi in zip(f, b)]
        simulated = simulate(one_f_one_b_schedule(costs, n)).iteration_time
        assert modeled == pytest.approx(simulated, rel=0.03)
