"""Numeric gradient checks for every hand-written backward pass."""

import numpy as np
import pytest

from repro.training import ops

RNG = np.random.default_rng(42)
EPS = 1e-6
TOL = 1e-5


def numeric_grad(fn, x, dout):
    """Central-difference gradient of sum(fn(x) * dout) wrt x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + EPS
        up = float((fn() * dout).sum())
        flat[i] = orig - EPS
        down = float((fn() * dout).sum())
        flat[i] = orig
        gflat[i] = (up - down) / (2 * EPS)
    return grad


class TestLinear:
    def test_gradients(self):
        x = RNG.normal(size=(2, 3, 4))
        w = RNG.normal(size=(4, 5))
        b = RNG.normal(size=5)
        out, cache = ops.linear(x, w, b)
        dout = RNG.normal(size=out.shape)
        dx, dw, db = ops.linear_backward(cache, dout)
        assert np.allclose(dx, numeric_grad(lambda: ops.linear(x, w, b)[0], x, dout), atol=TOL)
        assert np.allclose(dw, numeric_grad(lambda: ops.linear(x, w, b)[0], w, dout), atol=TOL)
        assert np.allclose(db, numeric_grad(lambda: ops.linear(x, w, b)[0], b, dout), atol=TOL)

    def test_no_bias(self):
        x = RNG.normal(size=(2, 4))
        w = RNG.normal(size=(4, 3))
        out, cache = ops.linear(x, w, None)
        _, _, db = ops.linear_backward(cache, np.ones_like(out))
        assert db is None


class TestNorms:
    def test_layernorm_gradients(self):
        x = RNG.normal(size=(2, 3, 8))
        gamma = RNG.normal(size=8)
        beta = RNG.normal(size=8)
        out, cache = ops.layernorm(x, gamma, beta)
        dout = RNG.normal(size=out.shape)
        dx, dgamma, dbeta = ops.layernorm_backward(cache, dout)
        fn = lambda: ops.layernorm(x, gamma, beta)[0]  # noqa: E731
        assert np.allclose(dx, numeric_grad(fn, x, dout), atol=TOL)
        assert np.allclose(dgamma, numeric_grad(fn, gamma, dout), atol=TOL)
        assert np.allclose(dbeta, numeric_grad(fn, beta, dout), atol=TOL)

    def test_layernorm_normalises(self):
        x = RNG.normal(size=(4, 16)) * 3 + 5
        out, _ = ops.layernorm(x, np.ones(16), np.zeros(16))
        assert np.allclose(out.mean(axis=-1), 0, atol=1e-6)
        assert np.allclose(out.var(axis=-1), 1, atol=1e-3)

    def test_rmsnorm_gradients(self):
        x = RNG.normal(size=(2, 3, 8))
        gamma = RNG.normal(size=8)
        out, cache = ops.rmsnorm(x, gamma)
        dout = RNG.normal(size=out.shape)
        dx, dgamma = ops.rmsnorm_backward(cache, dout)
        fn = lambda: ops.rmsnorm(x, gamma)[0]  # noqa: E731
        assert np.allclose(dx, numeric_grad(fn, x, dout), atol=TOL)
        assert np.allclose(dgamma, numeric_grad(fn, gamma, dout), atol=TOL)


class TestActivations:
    def test_gelu_gradient(self):
        x = RNG.normal(size=(3, 7))
        out, cache = ops.gelu(x)
        dout = RNG.normal(size=out.shape)
        dx = ops.gelu_backward(cache, dout)
        assert np.allclose(dx, numeric_grad(lambda: ops.gelu(x)[0], x, dout), atol=TOL)

    def test_silu_gradient(self):
        x = RNG.normal(size=(3, 7))
        out, cache = ops.silu(x)
        dout = RNG.normal(size=out.shape)
        dx = ops.silu_backward(cache, dout)
        assert np.allclose(dx, numeric_grad(lambda: ops.silu(x)[0], x, dout), atol=TOL)

    def test_swiglu_gradients(self):
        gate = RNG.normal(size=(2, 5))
        up = RNG.normal(size=(2, 5))
        out, cache = ops.swiglu(gate, up)
        dout = RNG.normal(size=out.shape)
        dgate, dup = ops.swiglu_backward(cache, dout)
        assert np.allclose(
            dgate, numeric_grad(lambda: ops.swiglu(gate, up)[0], gate, dout), atol=TOL
        )
        assert np.allclose(
            dup, numeric_grad(lambda: ops.swiglu(gate, up)[0], up, dout), atol=TOL
        )


class TestAttention:
    def test_causal_mask_blocks_future(self):
        q = RNG.normal(size=(1, 1, 4, 8))
        k = RNG.normal(size=(1, 1, 4, 8))
        v = RNG.normal(size=(1, 1, 4, 8))
        out, cache = ops.causal_attention(q, k, v, scale=0.35)
        probs = cache[3]
        assert np.allclose(np.triu(probs[0, 0], k=1), 0.0)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_first_position_attends_only_to_itself(self):
        q = RNG.normal(size=(1, 2, 3, 4))
        k = RNG.normal(size=(1, 2, 3, 4))
        v = RNG.normal(size=(1, 2, 3, 4))
        out, _ = ops.causal_attention(q, k, v, scale=0.5)
        assert np.allclose(out[:, :, 0], v[:, :, 0])

    def test_gradients(self):
        q = RNG.normal(size=(1, 2, 3, 4))
        k = RNG.normal(size=(1, 2, 3, 4))
        v = RNG.normal(size=(1, 2, 3, 4))
        out, cache = ops.causal_attention(q, k, v, scale=0.5)
        dout = RNG.normal(size=out.shape)
        dq, dk, dv = ops.causal_attention_backward(cache, dout)
        fn = lambda: ops.causal_attention(q, k, v, 0.5)[0]  # noqa: E731
        assert np.allclose(dq, numeric_grad(fn, q, dout), atol=TOL)
        assert np.allclose(dk, numeric_grad(fn, k, dout), atol=TOL)
        assert np.allclose(dv, numeric_grad(fn, v, dout), atol=TOL)

    def test_head_split_merge_roundtrip(self):
        x = RNG.normal(size=(2, 5, 12))
        assert np.array_equal(ops.merge_heads(ops.split_heads(x, 4)), x)

    def test_repeat_kv_roundtrip_gradient(self):
        x = RNG.normal(size=(2, 2, 3, 4))
        expanded = ops.repeat_kv(x, 3)
        assert expanded.shape == (2, 6, 3, 4)
        dx = ops.repeat_kv_backward(np.ones_like(expanded), 3)
        assert np.allclose(dx, 3.0)

    def test_repeat_kv_identity(self):
        x = RNG.normal(size=(2, 2, 3, 4))
        assert ops.repeat_kv(x, 1) is x


class TestEmbeddingAndLoss:
    def test_embedding_lookup(self):
        table = RNG.normal(size=(10, 4))
        tokens = np.array([[1, 3], [9, 0]])
        out, _ = ops.embedding(tokens, table)
        assert np.array_equal(out[0, 1], table[3])

    def test_embedding_backward_accumulates_duplicates(self):
        table = RNG.normal(size=(10, 4))
        tokens = np.array([[2, 2, 2]])
        out, cache = ops.embedding(tokens, table)
        dtable = ops.embedding_backward(cache, np.ones_like(out))
        assert np.allclose(dtable[2], 3.0)
        assert np.allclose(dtable[0], 0.0)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((1, 2, 5), -30.0)
        logits[0, 0, 3] = 30.0
        logits[0, 1, 1] = 30.0
        loss, _ = ops.cross_entropy(logits, np.array([[3, 1]]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform_is_log_vocab(self):
        logits = np.zeros((2, 3, 8))
        targets = np.zeros((2, 3), dtype=int)
        loss, _ = ops.cross_entropy(logits, targets)
        assert loss == pytest.approx(np.log(8))

    def test_cross_entropy_gradient(self):
        logits = RNG.normal(size=(2, 3, 6))
        targets = RNG.integers(0, 6, size=(2, 3))
        loss, cache = ops.cross_entropy(logits, targets)
        dlogits = ops.cross_entropy_backward(cache, 1.0)
        numeric = np.zeros_like(logits)
        flat = logits.reshape(-1)
        nflat = numeric.reshape(-1)
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + EPS
            up = ops.cross_entropy(logits, targets)[0]
            flat[i] = orig - EPS
            down = ops.cross_entropy(logits, targets)[0]
            flat[i] = orig
            nflat[i] = (up - down) / (2 * EPS)
        assert np.allclose(dlogits, numeric, atol=TOL)

    def test_cross_entropy_gradient_sums_to_zero_per_token(self):
        logits = RNG.normal(size=(2, 3, 6))
        targets = RNG.integers(0, 6, size=(2, 3))
        _, cache = ops.cross_entropy(logits, targets)
        dlogits = ops.cross_entropy_backward(cache, 1.0)
        assert np.allclose(dlogits.sum(axis=-1), 0.0, atol=1e-12)
