"""Tests for roofline calibration from measured times."""

import pytest

from repro.config import TrainingConfig
from repro.hardware.device import a100_80gb
from repro.model.layers import LayerKind
from repro.model.spec import gpt3_175b
from repro.model.units import OpKind, units_for_layer
from repro.profiler.calibrate import (
    TimingSample,
    apply_calibration,
    fit_efficiencies,
    synthetic_samples,
)


@pytest.fixture
def units():
    train = TrainingConfig(sequence_length=4096, global_batch_size=8)
    spec = gpt3_175b()
    collected = []
    for kind in LayerKind:
        collected.extend(units_for_layer(kind, spec, train, 8))
    return collected


PLANTED = {
    OpKind.GEMM: 0.48,
    OpKind.FLASH_ATTENTION: 0.40,
    OpKind.NORM: 0.03,
    OpKind.ELEMENTWISE: 0.05,
    OpKind.EMBEDDING: 0.02,
    OpKind.CROSS_ENTROPY: 0.06,
}


class TestCalibration:
    def test_recovers_planted_efficiencies(self, units):
        device = a100_80gb()
        samples = synthetic_samples(device, units, PLANTED)
        report = fit_efficiencies(samples, device)
        for kind, planted in PLANTED.items():
            if kind in report.efficiencies:
                assert report.efficiencies[kind] == pytest.approx(planted, rel=0.05)
        assert report.efficiencies[OpKind.GEMM] == pytest.approx(0.48, rel=0.02)

    def test_robust_to_measurement_noise(self, units):
        device = a100_80gb()
        samples = synthetic_samples(device, units, PLANTED, noise=0.1, seed=3)
        report = fit_efficiencies(samples, device)
        assert report.efficiencies[OpKind.GEMM] == pytest.approx(0.48, rel=0.15)
        assert report.residual < 0.15

    def test_residual_small_on_clean_data(self, units):
        device = a100_80gb()
        samples = synthetic_samples(device, units, PLANTED)
        report = fit_efficiencies(samples, device)
        assert report.residual < 0.02

    def test_apply_calibration_changes_device(self, units):
        device = a100_80gb()
        report = fit_efficiencies(
            synthetic_samples(device, units, PLANTED), device
        )
        calibrated = apply_calibration(device, report)
        assert "calibrated" in calibrated.name
        assert calibrated.achieved_flops(OpKind.GEMM) == pytest.approx(
            0.48 * device.peak_flops, rel=0.02
        )
        # Untouched fields survive.
        assert calibrated.memory_bytes == device.memory_bytes

    def test_unusable_samples_discarded(self, units):
        device = a100_80gb()
        # Impossibly fast measurements imply efficiency > 1: rejected.
        impossible = [
            TimingSample(unit=unit, measured_seconds=1e-12) for unit in units
        ]
        report = fit_efficiencies(impossible, device)
        assert not report.efficiencies

    def test_empty_input(self):
        report = fit_efficiencies([], a100_80gb())
        assert report.efficiencies == {}
        assert report.residual == float("inf")
