"""Batched vectorized simulation: bit-equivalence, caching, batching.

The batched executor's contract is *exactness*, not approximation: every
row of a batched ensemble must equal a scalar ``simulate`` of the
equivalent perturbed schedule bit for bit (the scalar engines being
bit-identical to each other already). These tests pin that contract —
including a differential fuzz over drawn PerturbationSpecs and all five
schedule kinds — plus the ensemble-cache digest isolation and the
shape-grouped batching of ``evaluate_robustness_many``.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.robust import (
    CRITICALITY_EPSILON,
    EnsembleCache,
    ensemble_digest,
    evaluate_robustness,
    evaluate_robustness_many,
    global_ensemble_cache,
)
from repro.pipeline.batched import BatchedSchedule, batched_simulator, shape_digest
from repro.pipeline.compiled import SimulationError
from repro.pipeline.perturb import (
    LinkDegradation,
    PerturbationSpec,
    TransientStall,
    lower_spec_durations,
    lowered_link_hops,
    perturb_schedule,
)
from repro.pipeline.schedules import (
    chimera_schedule,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_2bp,
    one_f_one_b_overlapped,
    one_f_one_b_schedule,
)
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import Schedule, StageCosts, Task, TaskKey, TaskKind

_KINDS = (
    "1f1b",
    "gpipe",
    "chimera",
    "chimerad",
    "interleaved",
    "2bp",
    "overlap",
    "overlap-fused",
)
_DEVICES = 4


def _random_costs(rng, p):
    return [
        StageCosts(
            forward=rng.uniform(0.5, 3.0),
            backward=rng.uniform(0.5, 5.0),
            activation_bytes=rng.choice([0.0, rng.uniform(1.0, 16.0)]),
        )
        for _ in range(p)
    ]


def _builders(rng, p, n):
    hop = rng.uniform(0.01, 0.5)
    schedules = {
        "1f1b": one_f_one_b_schedule(_random_costs(rng, p), n, hop_time=hop),
        "gpipe": gpipe_schedule(_random_costs(rng, p), n, hop_time=hop),
        "chimera": chimera_schedule(_random_costs(rng, p), n, hop_time=hop),
        "chimerad": chimera_schedule(
            _random_costs(rng, p), n, hop_time=hop, forward_doubling=True
        ),
        "interleaved": interleaved_1f1b_schedule(
            _random_costs(rng, 2 * p), n, p, hop_time=hop
        ),
    }
    # New families appended after the dict literal so the earlier kinds'
    # rng streams (and therefore their pinned fuzz schedules) stay
    # unchanged. Recompute times are pinned at a nonzero fraction of each
    # backward so the overlap machinery is always exercised (the default
    # clamp can degenerate to plain 1F1B on random costs).
    schedules["2bp"] = one_f_one_b_2bp(_random_costs(rng, p), n, hop_time=hop)
    overlap_costs = _random_costs(rng, p)
    schedules["overlap"] = one_f_one_b_overlapped(
        overlap_costs,
        n,
        hop_time=hop,
        recompute_times=[0.25 * c.backward for c in overlap_costs],
    )
    fused_costs = _random_costs(rng, p)
    schedules["overlap-fused"] = one_f_one_b_overlapped(
        fused_costs,
        n,
        hop_time=hop,
        recompute_times=[0.25 * c.backward for c in fused_costs],
        fused=True,
    )
    return schedules


_FUZZ_SCHEDULES = {}


def _fuzz_schedule(kind):
    if kind not in _FUZZ_SCHEDULES:
        _FUZZ_SCHEDULES[kind] = _builders(random.Random(0xBA7C), _DEVICES, 8)[kind]
    return _FUZZ_SCHEDULES[kind]


def _finite(low, high):
    return st.floats(
        min_value=low, max_value=high, allow_nan=False, allow_infinity=False
    )


_SPEC_STRATEGY = st.builds(
    PerturbationSpec.build,
    device_factors=st.dictionaries(
        st.integers(0, _DEVICES - 1), _finite(0.25, 4.0), max_size=_DEVICES
    ),
    jitter_sigma=st.sampled_from([0.0, 0.01, 0.1, 0.5]),
    seed=st.integers(0, 2**16),
    stalls=st.lists(
        st.builds(
            TransientStall,
            device=st.integers(0, _DEVICES - 1),
            delay=_finite(0.0, 5.0),
            first_task=st.integers(0, 8),
            length=st.integers(1, 4),
        ),
        max_size=2,
    ),
    links=st.lists(
        st.builds(
            LinkDegradation,
            src=st.integers(0, _DEVICES - 1),
            dst=st.integers(0, _DEVICES - 1),
            factor=_finite(0.0, 8.0),
            added_latency=_finite(0.0, 1.0),
        ),
        max_size=3,
    ),
)


class TestTopologicalOrder:
    @pytest.mark.parametrize("kind", _KINDS)
    def test_order_is_topological_and_memoized(self, kind):
        compiled = _fuzz_schedule(kind).compiled()
        order = compiled.topological_order()
        assert sorted(order) == list(range(compiled.num_tasks))
        position = {task: pos for pos, task in enumerate(order)}
        for j in range(compiled.num_tasks):
            for e in range(compiled.succ_ptr[j], compiled.succ_ptr[j + 1]):
                assert position[j] < position[compiled.succ_idx[e]]
        assert compiled.topological_order() is order

    def test_cycle_raises_simulation_error(self):
        a_key = TaskKey(0, 0, 0, TaskKind.FORWARD)
        b_key = TaskKey(0, 1, 0, TaskKind.FORWARD)
        a = Task(key=a_key, device=0, duration=1.0, deps=(b_key,))
        b = Task(key=b_key, device=1, duration=1.0, deps=(a_key,))
        schedule = Schedule(name="dead", num_devices=2, device_tasks=[[a], [b]])
        with pytest.raises(SimulationError, match="deadlock"):
            schedule.compiled().topological_order()
        with pytest.raises(SimulationError):
            batched_simulator(schedule)


class TestExecutorExactness:
    @pytest.mark.parametrize("kind", _KINDS)
    def test_nominal_row_matches_scalar_engine(self, kind):
        schedule = _fuzz_schedule(kind)
        scalar = simulate(schedule, engine="compiled", cache=False)
        sim = batched_simulator(schedule)
        assert isinstance(sim, BatchedSchedule)
        assert batched_simulator(schedule) is sim  # memoized on the schedule
        times = sim.iteration_times(sim.raw_durations)
        assert times.shape == (1,)
        assert float(times[0]) == scalar.iteration_time
        finish = sim.finish_matrix(sim.raw_durations)[0]
        for i, key in enumerate(schedule.compiled().keys):
            assert finish[i] == scalar.end_times[key]

    @pytest.mark.parametrize("kind", _KINDS)
    @given(spec=_SPEC_STRATEGY)
    @settings(
        max_examples=25,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fuzz_rows_bit_identical_to_scalar_perturbed_runs(self, kind, spec):
        """Differential fuzz: batched row k == simulate(perturb(reseeded(k)))."""
        schedule = _fuzz_schedule(kind)
        compiled = schedule.compiled()
        sim = batched_simulator(schedule)
        draws = 3
        rows = np.stack(
            [
                lower_spec_durations(compiled, spec.reseeded(k))
                for k in range(draws)
            ]
        )
        hops = lowered_link_hops(spec, schedule)
        batched_times = sim.iteration_times(rows, link_hops=hops)
        for k in range(draws):
            perturbed = perturb_schedule(schedule, spec.reseeded(k))
            scalar = simulate(perturbed, engine="compiled", cache=False)
            assert float(batched_times[k]) == scalar.iteration_time
            # The lowered duration vector is the perturbed schedule's
            # durations, bitwise.
            durations = [task.duration for task in perturbed.all_tasks()]
            assert rows[k].tolist() == durations

    @pytest.mark.parametrize("kind", _KINDS)
    @given(spec=_SPEC_STRATEGY)
    @settings(
        max_examples=10,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_fuzz_reports_identical_across_engines(self, kind, spec):
        schedule = _fuzz_schedule(kind)
        batched = evaluate_robustness(
            schedule, spec, draws=2, engine="batched", cache=False
        )
        compiled = evaluate_robustness(
            schedule, spec, draws=2, engine="compiled", cache=False
        )
        reference = evaluate_robustness(
            schedule, spec, draws=2, engine="reference", cache=False
        )
        assert batched == compiled == reference

    def test_duration_matrix_shape_is_validated(self):
        sim = batched_simulator(_fuzz_schedule("1f1b"))
        with pytest.raises(ValueError, match="duration matrix"):
            sim.iteration_times(np.zeros((2, sim.num_tasks + 1)))

    def test_jitter_vector_memoized_and_read_only(self):
        sim = batched_simulator(_fuzz_schedule("1f1b"))
        first = sim.jitter_vector(7, 0.1)
        assert sim.jitter_vector(7, 0.1) is first
        assert not first.flags.writeable
        assert sim.jitter_vector(8, 0.1) is not first
        assert np.all(sim.jitter_vector(7, 0.0) == 1.0)


class TestSharedDeterministicBaseline:
    def test_deterministic_lowering_happens_once_per_report(self, monkeypatch):
        """The p criticality bumps reuse one deterministic lowering.

        The scalar path rebuilt the full baseline spec (and re-perturbed
        the schedule) once per device; the batched path lowers the
        deterministic components exactly once and derives every bump row
        from them — and never materialises a perturbed Schedule at all.
        """
        import repro.core.robust as robust_module

        schedule = _builders(random.Random(5), _DEVICES, 8)["1f1b"]
        spec = PerturbationSpec.build(
            {1: 1.5}, jitter_sigma=0.1, seed=3,
            stalls=(TransientStall(device=0, delay=0.5),),
        )
        lower_calls = []
        real_lower = robust_module.lower_spec_components

        def counting_lower(compiled, lowered_spec):
            lower_calls.append(lowered_spec)
            return real_lower(compiled, lowered_spec)

        def forbidden_perturb(*args, **kwargs):
            raise AssertionError(
                "batched robustness must not materialise perturbed schedules"
            )

        monkeypatch.setattr(
            robust_module, "lower_spec_components", counting_lower
        )
        monkeypatch.setattr(
            robust_module, "perturb_schedule", forbidden_perturb
        )
        report = evaluate_robustness(
            schedule, spec, draws=4, engine="batched", cache=False
        )
        assert len(lower_calls) == 1
        assert lower_calls[0].jitter_sigma == 0.0  # the deterministic spec
        assert len(report.device_criticality) == _DEVICES

    def test_bump_rows_match_scalar_criticality(self):
        # The shared-baseline rewrite must not change the numbers: pin
        # criticality equality against the scalar oracle on a spec with
        # every component active.
        schedule = _fuzz_schedule("chimera")
        spec = PerturbationSpec.build(
            {0: 1.2, 3: 2.0}, jitter_sigma=0.05, seed=1,
            stalls=(TransientStall(device=2, delay=1.0, first_task=1, length=2),),
            links=(LinkDegradation(src=1, dst=2, factor=3.0, added_latency=0.1),),
        )
        batched = evaluate_robustness(
            schedule, spec, draws=0, engine="batched", cache=False
        )
        scalar = evaluate_robustness(
            schedule, spec, draws=0, engine="reference", cache=False
        )
        assert batched.device_criticality == scalar.device_criticality
        assert batched.deterministic_time == scalar.deterministic_time


class TestEnsembleDigest:
    def _schedule(self, seed=0):
        return _builders(random.Random(seed), _DEVICES, 8)["1f1b"]

    def test_digest_moves_iff_content_moves(self):
        schedule = self._schedule()
        spec = PerturbationSpec.build({1: 1.5}, jitter_sigma=0.1, seed=2)
        base = ensemble_digest(schedule, spec, 8)
        # Same content => same digest (idempotent, identity-independent).
        assert ensemble_digest(schedule, spec, 8) == base
        # Any input's content change moves the digest.
        assert ensemble_digest(self._schedule(seed=1), spec, 8) != base
        assert ensemble_digest(schedule, spec.reseeded(1), 8) != base
        assert ensemble_digest(schedule, spec, 9) != base
        assert ensemble_digest(schedule, spec, 8, criticality_epsilon=0.5) != base
        # Perturbed durations are schedule content.
        perturbed = perturb_schedule(schedule, PerturbationSpec.build({0: 2.0}))
        assert ensemble_digest(perturbed, spec, 8) != base

    def test_digest_isolation_in_cache(self):
        schedule = self._schedule()
        spec = PerturbationSpec.build(jitter_sigma=0.2, seed=0)
        cache = EnsembleCache()
        a = evaluate_robustness(schedule, spec, draws=4, cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        assert evaluate_robustness(schedule, spec, draws=4, cache=cache) is a
        assert (cache.hits, cache.misses) == (1, 1)
        # Different draw count misses: same schedule/spec, new ensemble.
        evaluate_robustness(schedule, spec, draws=5, cache=cache)
        assert (cache.hits, cache.misses) == (1, 2)
        assert len(cache) == 2

    def test_fifo_eviction_and_clear(self):
        cache = EnsembleCache(max_entries=2)
        schedule = self._schedule()
        for draws in (1, 2, 3):
            evaluate_robustness(
                schedule, PerturbationSpec.build(jitter_sigma=0.1),
                draws=draws, cache=cache,
            )
        assert len(cache) == 2  # draws=1 evicted FIFO
        evaluate_robustness(
            schedule, PerturbationSpec.build(jitter_sigma=0.1),
            draws=1, cache=cache,
        )
        assert cache.misses == 4 and cache.hits == 0
        cache.clear()
        assert len(cache) == 0 and cache.lookups == 0

    def test_global_cache_honours_disable_env(self, monkeypatch):
        schedule = self._schedule()
        spec = PerturbationSpec.build(jitter_sigma=0.3, seed=9)
        cache = global_ensemble_cache()
        cache.clear()
        evaluate_robustness(schedule, spec, draws=2)
        assert len(cache) == 1
        monkeypatch.setenv("REPRO_SIM_CACHE", "0")
        before = cache.lookups
        evaluate_robustness(schedule, spec, draws=2)
        assert cache.lookups == before  # never consulted
        cache.clear()


class TestShapeDigest:
    def test_duration_changes_preserve_shape(self):
        schedule = _fuzz_schedule("1f1b")
        perturbed = perturb_schedule(schedule, PerturbationSpec.build({0: 3.0}))
        assert shape_digest(perturbed.compiled()) == shape_digest(
            schedule.compiled()
        )
        # ... while the content digest (and hence ensemble digests) move.
        assert perturbed.digest() != schedule.digest()

    def test_structure_changes_move_shape(self):
        rng = random.Random(3)
        base = _builders(rng, _DEVICES, 8)
        digests = {shape_digest(s.compiled()) for s in base.values()}
        assert len(digests) == len(base)  # every kind has its own shape
        hop_changed = _builders(random.Random(3), _DEVICES, 8)["1f1b"]
        hop_changed.hop_time += 1.0
        assert shape_digest(hop_changed.compiled()) not in digests

    def test_link_override_changes_move_shape(self):
        schedule = _fuzz_schedule("gpipe")
        degraded = perturb_schedule(
            schedule,
            PerturbationSpec.build(
                links=(LinkDegradation(src=0, dst=1, factor=2.0),)
            ),
        )
        assert shape_digest(degraded.compiled()) != shape_digest(
            schedule.compiled()
        )


class TestEvaluateRobustnessMany:
    def test_matches_per_schedule_reports_across_mixed_shapes(self):
        spec = PerturbationSpec.build(
            {0: 1.4}, jitter_sigma=0.1, seed=6,
            links=(LinkDegradation(src=0, dst=1, factor=2.0),),
        )
        schedules = []
        for seed in (0, 1, 2):
            schedules.extend(_builders(random.Random(seed), _DEVICES, 8).values())
        many = evaluate_robustness_many(schedules, spec, draws=4, cache=False)
        assert len(many) == len(schedules)
        for schedule, report in zip(schedules, many):
            assert report == evaluate_robustness(
                schedule, spec, draws=4, engine="compiled", cache=False
            )

    def test_shape_groups_share_one_lowering(self, monkeypatch):
        import repro.core.robust as robust_module

        spec = PerturbationSpec.build(jitter_sigma=0.2, seed=0)
        # 3 schedules, all the same 1f1b shape (same hop), different
        # stage durations — the robust-sweep candidate pattern.
        schedules = [
            one_f_one_b_schedule(
                _random_costs(random.Random(seed), _DEVICES), 8, hop_time=0.1
            )
            for seed in (10, 11, 12)
        ]
        assert len({shape_digest(s.compiled()) for s in schedules}) == 1
        calls = []
        real_lower = robust_module.lower_spec_components

        def counting_lower(compiled, lowered_spec):
            calls.append(compiled)
            return real_lower(compiled, lowered_spec)

        monkeypatch.setattr(robust_module, "lower_spec_components", counting_lower)
        evaluate_robustness_many(schedules, spec, draws=4, cache=False)
        assert len(calls) == 1  # one lowering for the whole shape group

    def test_cache_short_circuits_members(self):
        spec = PerturbationSpec.build(jitter_sigma=0.15, seed=4)
        schedules = [
            _builders(random.Random(seed), _DEVICES, 8)["gpipe"]
            for seed in (20, 21)
        ]
        cache = EnsembleCache()
        first = evaluate_robustness_many(schedules, spec, draws=3, cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        second = evaluate_robustness_many(schedules, spec, draws=3, cache=cache)
        assert second == first
        assert cache.hits == 2
        # A scalar-engine pass over the same inputs agrees exactly.
        scalar = evaluate_robustness_many(
            schedules, spec, draws=3, engine="reference", cache=False
        )
        assert scalar == first

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="robustness engine"):
            evaluate_robustness(
                _fuzz_schedule("1f1b"), PerturbationSpec(), engine="magic"
            )


# -- Heterogeneous device pools ---------------------------------------------

_POOL_STRATEGY = st.lists(
    st.one_of(
        st.sampled_from([1.0, 1.21875, 1.3, 1.6, 2.0]),
        st.floats(
            min_value=0.5,
            max_value=3.0,
            allow_nan=False,
            allow_infinity=False,
        ),
    ),
    min_size=_DEVICES,
    max_size=_DEVICES,
)


class TestHeterogeneousPoolFuzz:
    """Batched rows under drawn heterogeneous fleets must stay bit-equal
    to the scalar engines: per-rank slowdowns lower via
    ``cluster_perturbation`` exactly like hand-built PerturbationSpecs."""

    @pytest.mark.parametrize("kind", _KINDS)
    @given(factors=_POOL_STRATEGY, jitter=st.sampled_from([0.0, 0.05]))
    @settings(
        max_examples=10,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_pool_reports_identical_across_engines(self, kind, factors, jitter):
        from repro.core.robust import cluster_perturbation
        from repro.hardware.cluster import cluster_a

        cluster = cluster_a(1).with_device_factors(factors)
        spec = cluster_perturbation(cluster, _DEVICES, jitter_sigma=jitter)
        schedule = _fuzz_schedule(kind)
        batched = evaluate_robustness(
            schedule, spec, draws=2, engine="batched", cache=False
        )
        compiled = evaluate_robustness(
            schedule, spec, draws=2, engine="compiled", cache=False
        )
        reference = evaluate_robustness(
            schedule, spec, draws=2, engine="reference", cache=False
        )
        assert batched == compiled == reference
