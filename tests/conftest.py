"""Shared fixtures: small, fast-to-plan configurations."""

from __future__ import annotations

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b, llama2_70b, tiny_gpt, tiny_llama


@pytest.fixture(scope="session")
def gpt3():
    return gpt3_175b()


@pytest.fixture(scope="session")
def llama2():
    return llama2_70b()


@pytest.fixture
def small_train():
    """A small but GPU-scale workload (short sequence, few micro-batches)."""
    return TrainingConfig(sequence_length=2048, global_batch_size=16)


@pytest.fixture
def small_parallel():
    return ParallelConfig(8, 8, 1)


@pytest.fixture
def gpt3_ctx(gpt3, small_train, small_parallel):
    """GPT-3 on cluster A: the paper's (8, 8, 1) layout, short sequences so
    planning stays fast while memory pressure is still visible."""
    return PlannerContext(cluster_a(8), gpt3, small_train, small_parallel)


@pytest.fixture
def tiny_spec():
    return tiny_gpt(num_layers=3, hidden_size=32, vocab_size=50)


@pytest.fixture
def tiny_llama_spec():
    return tiny_llama(num_layers=2, hidden_size=32, vocab_size=50)


@pytest.fixture
def tiny_train():
    return TrainingConfig(
        sequence_length=8,
        global_batch_size=4,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )


@pytest.fixture
def tiny_ctx(tiny_spec, tiny_train):
    return PlannerContext(
        cluster_a(1),
        tiny_spec,
        tiny_train,
        ParallelConfig(1, 2, 1),
        memory_limit_bytes=8 * 1024**2,
    )
