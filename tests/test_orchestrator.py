"""Tests for the sweep orchestration layer.

Covers the four orchestrator mechanisms against the sweep's pinned
invariant (bit-identical best plan to the serial exhaustive sweep):
work-stealing shard execution, cache merge-back (including the persisted
cache file), incumbent-broadcast pruning inside workers, and frontier
checkpoint/resume — including a real SIGKILL mid-sweep.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.config import ParallelConfig
from repro.core.isomorphism import PRIVATE_FINGERPRINT, StageEvalCache
from repro.core.orchestrator import (
    CheckpointError,
    ShardTask,
    SweepProgress,
    _WorkerInit,
    checkpoint_from_dict,
    checkpoint_to_dict,
    load_cache_file,
    load_checkpoint,
    per_sample_time,
    resolve_planner,
    run_shard,
    save_cache_file,
    sweep_fingerprint,
)
from repro.core.search import PlannerContext, enumerate_parallel_strategies
from repro.core.serialize import plan_signature
from repro.core.sweep import SweepConfig, run_sweep, strategy_lower_bound
from repro.hardware.cluster import cluster_a

LIMIT = 8 * 1024**2

SERIAL = SweepConfig(workers=1, prune=False, share_cache=False)


@pytest.fixture
def sweep_args(tiny_spec, tiny_train):
    """Tiny-GPT sweep over cluster A's one-node 8-device strategy space."""
    return dict(
        cluster=cluster_a(1),
        spec=tiny_spec,
        train=tiny_train,
        num_devices=8,
        memory_limit_bytes=LIMIT,
    )


class _Abort(Exception):
    """Raised by a progress callback to cut a sweep short mid-flight."""


def _aborting_after(n):
    """Progress callback raising _Abort once ``n`` events have fired."""
    seen = []

    def callback(event: SweepProgress) -> None:
        seen.append(event)
        if len(seen) >= n:
            raise _Abort

    return callback, seen


class TestCheckpointResume:
    def test_abort_and_resume_identical_best(self, sweep_args, tmp_path):
        """Kill a sweep via its callback mid-flight; the resumed sweep must
        select the bit-identical best plan while re-planning strictly
        fewer strategies than it restores + plans in total."""
        serial = run_sweep(config=SERIAL, **sweep_args)
        path = str(tmp_path / "frontier.json")
        callback, seen = _aborting_after(3)
        with pytest.raises(_Abort):
            run_sweep(
                config=SweepConfig(
                    workers=1, checkpoint_path=path, checkpoint_every=1
                ),
                progress=callback,
                **sweep_args,
            )
        assert os.path.exists(path)
        resumed = run_sweep(
            config=SweepConfig(workers=1, checkpoint_path=path, checkpoint_every=1),
            resume_from=path,
            **sweep_args,
        )
        assert plan_signature(resumed.best) == plan_signature(serial.best)
        stats = resumed.stats
        # Everything the abort covered was restored, not recomputed.
        assert stats.strategies_resumed >= len(
            [e for e in seen if e.kind == "planned"]
        )
        fresh = stats.strategies_planned - stats.strategies_resumed
        assert fresh < serial.stats.strategies_planned
        assert stats.strategies_planned + stats.strategies_pruned == (
            stats.strategies_total
        )

    def test_resume_completed_checkpoint_plans_nothing(self, sweep_args, tmp_path):
        path = str(tmp_path / "frontier.json")
        first = run_sweep(
            config=SweepConfig(workers=1, checkpoint_path=path), **sweep_args
        )
        resumed = run_sweep(
            config=SweepConfig(workers=1, checkpoint_path=path),
            resume_from=path,
            **sweep_args,
        )
        assert plan_signature(resumed.best) == plan_signature(first.best)
        assert resumed.stats.strategies_resumed == (
            resumed.stats.strategies_planned
        )

    def test_checkpoint_written_before_progress_event(self, sweep_args, tmp_path):
        """The checkpoint covering an event is on disk before the event
        fires — an abort (or kill) inside the callback loses nothing."""
        path = str(tmp_path / "frontier.json")
        callback, seen = _aborting_after(1)
        with pytest.raises(_Abort):
            run_sweep(
                config=SweepConfig(
                    workers=1, checkpoint_path=path, checkpoint_every=1
                ),
                progress=callback,
                **sweep_args,
            )
        checkpoint = load_checkpoint(path)
        (event,) = seen
        assert event.index in checkpoint.completed

    def test_digest_mismatch_rejected(self, sweep_args, tmp_path):
        path = str(tmp_path / "frontier.json")
        run_sweep(
            config=SweepConfig(workers=1, checkpoint_path=path), **sweep_args
        )
        other = dict(sweep_args)
        other["memory_limit_bytes"] = LIMIT * 2
        with pytest.raises(CheckpointError, match="does not match"):
            run_sweep(
                config=SweepConfig(workers=1),
                resume_from=path,
                **other,
            )

    def test_malformed_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(str(path))
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(str(path))

    def test_checkpoint_round_trip(self, sweep_args, tmp_path):
        path = str(tmp_path / "frontier.json")
        run_sweep(
            config=SweepConfig(workers=1, checkpoint_path=path), **sweep_args
        )
        checkpoint = load_checkpoint(path)
        assert checkpoint_from_dict(checkpoint_to_dict(checkpoint)) == checkpoint
        assert checkpoint.completed
        assert checkpoint.incumbent is not None

    def test_sigkill_and_resume(self, sweep_args, tmp_path):
        """A worker-style hard kill (SIGKILL from inside the progress
        callback, no cleanup, no atexit) leaves a checkpoint the next run
        resumes to the bit-identical best plan."""
        serial = run_sweep(config=SERIAL, **sweep_args)
        path = str(tmp_path / "frontier.json")
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.config import TrainingConfig
            from repro.core.sweep import SweepConfig, run_sweep
            from repro.hardware.cluster import cluster_a
            from repro.model.spec import tiny_gpt

            events = []

            def killer(event):
                events.append(event)
                if len(events) >= 2:
                    os.kill(os.getpid(), signal.SIGKILL)

            run_sweep(
                cluster_a(1),
                tiny_gpt(num_layers=3, hidden_size=32, vocab_size=50),
                TrainingConfig(
                    sequence_length=8, global_batch_size=4, micro_batch_size=1,
                    sequence_parallel=False, flash_attention=False,
                ),
                8,
                config=SweepConfig(
                    workers=1, checkpoint_path={path!r}, checkpoint_every=1
                ),
                progress=killer,
                memory_limit_bytes={LIMIT},
            )
            raise SystemExit("the kill never fired")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        killed = load_checkpoint(path)
        assert len(killed.completed) >= 2
        resumed = run_sweep(
            config=SweepConfig(workers=1, checkpoint_path=path, checkpoint_every=1),
            resume_from=path,
            **sweep_args,
        )
        assert plan_signature(resumed.best) == plan_signature(serial.best)
        fresh = resumed.stats.strategies_planned - resumed.stats.strategies_resumed
        assert resumed.stats.strategies_resumed >= 2
        assert fresh < serial.stats.strategies_planned


class TestCacheMergeBack:
    def test_merged_cache_sweep_bit_identical_to_cold(self, sweep_args):
        """Two disjoint half-sweeps' cache shards, merged, must drive a
        full sweep to the bit-identical plans of a cold sweep."""
        strategies = enumerate_parallel_strategies(
            sweep_args["num_devices"],
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
        )
        assert len(strategies) >= 2
        half = len(strategies) // 2
        shard_a, shard_b = StageEvalCache(), StageEvalCache()
        run_sweep(
            strategies=strategies[:half],
            config=SweepConfig(workers=1, prune=False),
            eval_cache=shard_a,
            **sweep_args,
        )
        run_sweep(
            strategies=strategies[half:],
            config=SweepConfig(workers=1, prune=False),
            eval_cache=shard_b,
            **sweep_args,
        )
        merged = StageEvalCache()
        assert merged.merge_entries(shard_a.export_entries()) == len(
            shard_a.export_entries()
        )
        merged.merge_entries(shard_b.export_entries())
        # Merging again is a no-op: digest keys make the union idempotent.
        assert merged.merge_entries(shard_a.export_entries()) == 0

        cold = run_sweep(config=SERIAL, **sweep_args)
        warm = run_sweep(
            config=SweepConfig(workers=1, prune=False),
            eval_cache=merged,
            **sweep_args,
        )
        assert plan_signature(warm.best) == plan_signature(cold.best)
        for a, b in zip(cold.plans, warm.plans):
            assert plan_signature(a) == plan_signature(b)

    def test_parallel_sweep_merges_worker_entries(self, sweep_args):
        cache = StageEvalCache()
        result = run_sweep(
            config=SweepConfig(workers=2, min_parallel=1, prune=False),
            eval_cache=cache,
            **sweep_args,
        )
        assert result.stats.workers == 2
        assert result.stats.shards_dispatched >= 2
        assert result.stats.cache_entries_merged > 0
        # The coordinator cache ends up holding the workers' evaluations.
        assert len(cache) >= result.stats.cache_entries_merged
        total = result.stats.worker_cache_hits + result.stats.worker_cache_misses
        assert total > 0

    def test_cache_file_round_trip(self, sweep_args, tmp_path):
        path = str(tmp_path / "evals.json")
        cold = run_sweep(
            config=SweepConfig(workers=1, cache_path=path), **sweep_args
        )
        assert os.path.exists(path)
        entries = load_cache_file(path)
        assert entries
        # Values round-trip exactly (including inf backward times, which
        # JSON carries as Infinity literals).
        probe = StageEvalCache()
        assert probe.merge_entries(entries) == len(entries)
        warm = run_sweep(
            config=SweepConfig(workers=1, cache_path=path), **sweep_args
        )
        assert warm.stats.cache_entries_loaded == len(entries)
        assert plan_signature(warm.best) == plan_signature(cold.best)

    def test_cache_path_requires_share_cache(self, sweep_args, tmp_path):
        with pytest.raises(ValueError, match="share_cache"):
            run_sweep(
                config=SweepConfig(
                    workers=1, share_cache=False, cache_path=str(tmp_path / "c.json")
                ),
                **sweep_args,
            )

    def test_private_entries_never_exported(self):
        cache = StageEvalCache()
        cache.enable_journal()
        private = (PRIVATE_FINGERPRINT, 1234, "k")
        cache.put(private, "secret")
        cache.put(("fp", "k"), "shared")
        assert cache.get(private) == "secret"
        exported = cache.export_entries()
        assert [key for key, _ in exported] == [("fp", "k")]
        assert [key for key, _ in cache.journal_slice(0)] == [("fp", "k")]
        sink = StageEvalCache()
        assert sink.merge_entries([(private, "secret")]) == 0


class TestBoundedWorkerCache:
    def test_fifo_eviction(self):
        cache = StageEvalCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("c",), 3)
        assert len(cache) == 2
        assert cache.get(("a",)) is None  # first in, first out
        assert cache.get(("b",)) == 2
        assert cache.get(("c",)) == 3

    def test_journal_survives_eviction(self):
        cache = StageEvalCache(max_entries=1)
        cache.enable_journal()
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert len(cache) == 1
        assert [key for key, _ in cache.journal_slice(0)] == [("a",), ("b",)]
        assert cache.journal_length == 2
        # Stable offsets: a later slice sees only later entries.
        cache.put(("c",), 3)
        assert [key for key, _ in cache.journal_slice(2)] == [("c",)]

    def test_rewriting_same_key_does_not_grow_journal(self):
        cache = StageEvalCache()
        cache.enable_journal()
        cache.put(("a",), 1)
        cache.put(("a",), 1)
        assert cache.journal_length == 1


class TestIncumbentBroadcast:
    def test_run_shard_prunes_against_broadcast_incumbent(self, sweep_args):
        """A shard whose bounds exceed the broadcast incumbent is pruned
        inside the worker without planning anything."""
        strategies = enumerate_parallel_strategies(
            sweep_args["num_devices"],
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
        )
        contexts = [
            PlannerContext(
                sweep_args["cluster"],
                sweep_args["spec"],
                sweep_args["train"],
                parallel,
                memory_limit_bytes=LIMIT,
            )
            for parallel in strategies
        ]
        per_sample = 1.0 / sweep_args["train"].global_batch_size
        bounds = [strategy_lower_bound(ctx) * per_sample for ctx in contexts]
        init = _WorkerInit(
            planner="AdaPipe",
            cluster=sweep_args["cluster"],
            spec=sweep_args["spec"],
            train=sweep_args["train"],
            context_kwargs={"memory_limit_bytes": LIMIT},
            share_cache=True,
            cache_max_entries=None,
            prune=True,
        )
        planner_fn = resolve_planner("AdaPipe")
        cache = StageEvalCache()
        cache.enable_journal()
        # Incumbent below every bound: the whole shard must be pruned.
        task = ShardTask(
            indices=tuple(range(len(strategies))),
            strategies=tuple(strategies),
            bounds=tuple(bounds),
            incumbent=min(bounds) / 2.0,
            cache_entries=(),
        )
        result = run_shard(planner_fn, init, cache, task)
        assert result.planned == ()
        assert set(result.pruned) == set(range(len(strategies)))
        assert result.cache_entries == ()

    def test_run_shard_tightens_incumbent_within_shard(self, sweep_args):
        """With no broadcast incumbent, the shard's own first feasible
        plans establish one that prunes its later, worse members."""
        strategies = enumerate_parallel_strategies(
            sweep_args["num_devices"],
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
        )
        contexts = [
            PlannerContext(
                sweep_args["cluster"],
                sweep_args["spec"],
                sweep_args["train"],
                parallel,
                memory_limit_bytes=LIMIT,
            )
            for parallel in strategies
        ]
        per_sample = 1.0 / sweep_args["train"].global_batch_size
        bounds = [strategy_lower_bound(ctx) * per_sample for ctx in contexts]
        order = sorted(range(len(strategies)), key=lambda i: (bounds[i], i))
        init = _WorkerInit(
            planner="AdaPipe",
            cluster=sweep_args["cluster"],
            spec=sweep_args["spec"],
            train=sweep_args["train"],
            context_kwargs={"memory_limit_bytes": LIMIT},
            share_cache=True,
            cache_max_entries=None,
            prune=True,
        )
        task = ShardTask(
            indices=tuple(order),
            strategies=tuple(strategies[i] for i in order),
            bounds=tuple(bounds[i] for i in order),
            incumbent=float("inf"),
            cache_entries=(),
        )
        cache = StageEvalCache()
        cache.enable_journal()
        result = run_shard(resolve_planner("AdaPipe"), init, cache, task)
        reference = run_sweep(
            config=SweepConfig(workers=1, prune=True), **sweep_args
        )
        # The whole bound-ordered space as one shard IS the serial pruned
        # sweep: same planned/pruned split, and the cache delta holds
        # every exported evaluation.
        assert len(result.planned) == reference.stats.strategies_planned
        assert len(result.pruned) == reference.stats.strategies_pruned
        assert len(result.cache_entries) > 0

    def test_pruning_stats_split_by_origin(self, sweep_args):
        result = run_sweep(
            config=SweepConfig(workers=2, min_parallel=1, prune=True),
            **sweep_args,
        )
        stats = result.stats
        assert stats.strategies_pruned == (
            stats.incumbent_prunes + stats.coordinator_prunes
        )
        assert stats.strategies_planned + stats.strategies_pruned == (
            stats.strategies_total
        )


class TestProgressStreaming:
    def test_every_strategy_emits_exactly_one_event(self, sweep_args):
        events = []
        result = run_sweep(
            config=SweepConfig(workers=1, prune=True),
            progress=events.append,
            **sweep_args,
        )
        assert len(events) == result.stats.strategies_total
        assert sorted(e.index for e in events) == list(
            range(result.stats.strategies_total)
        )
        planned = [e for e in events if e.kind == "planned"]
        pruned = [e for e in events if e.kind == "pruned"]
        assert len(planned) == result.stats.strategies_planned
        assert len(pruned) == result.stats.strategies_pruned

    def test_frontier_events_carry_best_plan(self, sweep_args):
        events = []
        result = run_sweep(
            config=SweepConfig(workers=1, prune=True),
            progress=events.append,
            **sweep_args,
        )
        improvements = [e for e in events if e.improved]
        assert improvements
        for event in improvements:
            assert event.plan is not None
            assert per_sample_time(event.plan) == event.per_sample_time
        # The last improvement is the sweep's selected best.
        final = improvements[-1]
        assert plan_signature(final.plan) == plan_signature(result.best)
        # Best-so-far only decreases along the stream.
        times = [e.best_per_sample_time for e in events if e.best_per_sample_time]
        assert times == sorted(times, reverse=True)

    def test_parallel_stream_counts_match(self, sweep_args):
        events = []
        result = run_sweep(
            config=SweepConfig(workers=2, min_parallel=1, prune=True),
            progress=events.append,
            **sweep_args,
        )
        assert result.stats.workers == 2
        assert len(events) == result.stats.strategies_total


class TestFingerprint:
    def test_fingerprint_moves_with_inputs(self, sweep_args):
        strategies = enumerate_parallel_strategies(
            sweep_args["num_devices"],
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
        )
        base = sweep_fingerprint(
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
            "AdaPipe",
            strategies,
            {"memory_limit_bytes": LIMIT},
        )
        assert base == sweep_fingerprint(
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
            "AdaPipe",
            strategies,
            {"memory_limit_bytes": LIMIT},
        )
        for planner, kwargs, subset in [
            ("Even Partitioning", {"memory_limit_bytes": LIMIT}, strategies),
            ("AdaPipe", {"memory_limit_bytes": LIMIT * 2}, strategies),
            ("AdaPipe", {"memory_limit_bytes": LIMIT}, strategies[:-1]),
        ]:
            assert base != sweep_fingerprint(
                sweep_args["cluster"],
                sweep_args["spec"],
                sweep_args["train"],
                planner,
                subset,
                kwargs,
            )

    def test_save_and_load_cache_file_roundtrip_values(self, sweep_args, tmp_path):
        cache = StageEvalCache()
        run_sweep(
            config=SweepConfig(workers=1, prune=False),
            eval_cache=cache,
            **sweep_args,
        )
        path = str(tmp_path / "evals.json")
        saved = save_cache_file(cache, path)
        loaded = dict(load_cache_file(path))
        assert saved == len(loaded)
        for key, value in cache.export_entries():
            assert loaded[key] == value
