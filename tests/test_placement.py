"""Property tests for the heterogeneous placement search.

The three load-bearing invariants:

* a *homogeneous* pool is invisible — the placed search must return plans
  bit-identical to the poolless planner, at every sweep worker count;
* the search depends only on the pool *multiset* — permuting identical
  devices never changes the chosen plan (or its placement metadata);
* placements are economically sane — a strictly slower part (same
  capacity) never ends up with a strictly larger stage than a faster one
  (otherwise swapping the two ranks would dominate, and the exhaustive
  placement enumeration would have found the swap).
"""

import itertools

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.placement import (
    MAX_PLACEMENTS,
    apply_plan_placement,
    best_placement_scale_floor,
    device_classes,
    enumerate_placements,
    placement_devices,
    pool_capacity_sum,
)
from repro.core.search import PlannerContext, plan_adapipe
from repro.core.serialize import plan_signature
from repro.core.sweep import SweepConfig, run_sweep
from repro.hardware.cluster import cluster_a
from repro.hardware.device import a100_80gb, ascend910_32gb, derated
from repro.model.spec import tiny_gpt

LIMIT = 8 * 1024**2


def _pool_ctx(pool, spec, train, limit=LIMIT):
    cluster = cluster_a(1).with_device_pool(tuple(pool))
    return PlannerContext(
        cluster,
        spec,
        train,
        ParallelConfig(1, len(pool), 1),
        memory_limit_bytes=limit,
    )


class TestHomogeneousPoolInvisible:
    """Pool of p identical devices == no pool at all, bit for bit."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sweep_bit_identical(self, tiny_spec, tiny_train, workers):
        # A pool pins pipeline depth to the pool size, so compare over the
        # strategy space both clusters can run: pp == 4.
        base = cluster_a(1)
        config = SweepConfig(workers=workers)
        strategies = [ParallelConfig(1, 4, 1)]
        plain = run_sweep(
            base, tiny_spec, tiny_train, 4,
            strategies=strategies, config=config, memory_limit_bytes=LIMIT,
        )
        pooled = run_sweep(
            base.with_device_pool((base.device,) * 4),
            tiny_spec, tiny_train, 4,
            strategies=strategies, config=config, memory_limit_bytes=LIMIT,
        )
        assert plain.best is not None
        assert plan_signature(pooled.best) == plan_signature(plain.best)
        # Every strategy in the sweep agrees, not just the winner.
        plain_sigs = sorted(plan_signature(p) for p in plain.plans if p.feasible)
        pool_sigs = sorted(plan_signature(p) for p in pooled.plans if p.feasible)
        assert pool_sigs == plain_sigs

    @pytest.mark.parametrize("p", [2, 3])
    def test_planner_bit_identical(self, tiny_spec, tiny_train, p):
        base = cluster_a(1)
        plain = plan_adapipe(
            PlannerContext(
                base, tiny_spec, tiny_train,
                ParallelConfig(1, p, 1), memory_limit_bytes=LIMIT,
            )
        )
        pooled = plan_adapipe(_pool_ctx((base.device,) * p, tiny_spec, tiny_train))
        assert plan_signature(pooled) == plan_signature(plain)
        assert pooled.metadata["placement"] == [0] * p
        assert pooled.metadata["placement_searched"] == 1


class TestPermutationInvariance:
    """The chosen plan depends on the pool multiset, not its order."""

    def test_permuted_pools_choose_one_plan(self, tiny_spec, tiny_train):
        base = a100_80gb()
        parts = [base, base, derated(base, 1.4)]
        perms = {
            repr(perm): perm for perm in itertools.permutations(parts)
        }  # DeviceSpec holds dicts (unhashable); dedup on repr instead
        plans = [
            plan_adapipe(_pool_ctx(perm, tiny_spec, tiny_train))
            for _, perm in sorted(perms.items())
        ]
        reference = plans[0]
        assert reference.feasible
        for plan in plans[1:]:
            assert plan_signature(plan) == plan_signature(reference)
            assert plan.metadata["placement"] == reference.metadata["placement"]
            assert (
                plan.metadata["placement_devices"]
                == reference.metadata["placement_devices"]
            )

    def test_device_classes_canonical(self):
        base = a100_80gb()
        slow = derated(base, 1.4)
        forward = cluster_a(1).with_device_pool((base, slow, base))
        backward = cluster_a(1).with_device_pool((slow, base, base))
        assert device_classes(forward) == device_classes(backward)
        classes = device_classes(forward)
        assert [cls.compute_scale for cls in classes] == sorted(
            cls.compute_scale for cls in classes
        )
        assert [cls.count for cls in classes] == [2, 1]


class TestPlacementSanity:
    """A strictly slower, equal-memory part never gets a larger stage."""

    def test_slower_device_never_strictly_larger_stage(self, tiny_train):
        spec = tiny_gpt(num_layers=6, hidden_size=32, vocab_size=50)
        base = a100_80gb()
        for slowdown in (1.3, 1.6, 2.0):
            pool = (base, derated(base, slowdown), base)
            plan = plan_adapipe(_pool_ctx(pool, spec, tiny_train))
            assert plan.feasible
            scales = plan.metadata["placement_scales"]
            stages = list(plan.stages)
            # Nominal (pre-scaling) stage compute: the planner multiplied
            # each stage's times by its rank's scale, so divide it back out.
            nominal = [
                (stage.forward_time + stage.backward_time) / scale
                for stage, scale in zip(stages, scales)
            ]
            for i, j in itertools.permutations(range(len(stages)), 2):
                if scales[i] > scales[j]:
                    assert nominal[i] <= nominal[j] * (1 + 1e-12), (
                        f"slowdown {slowdown}: rank {i} "
                        f"(scale {scales[i]}) got a strictly larger stage "
                        f"than rank {j} (scale {scales[j]})"
                    )


class TestEnumeration:
    """Combinatorics of the placement space itself."""

    def test_lexicographic_multiset_permutations(self):
        base = a100_80gb()
        cluster = cluster_a(1).with_device_pool(
            (base, derated(base, 1.4), base)
        )
        classes = device_classes(cluster)
        placements = enumerate_placements(classes, 3)
        assert placements == [(0, 0, 1), (0, 1, 0), (1, 0, 0)]
        assert placements == sorted(placements)
        devices = placement_devices(classes, placements[1])
        assert [d.name for d in devices] == [base.name, f"{base.name}*1.4", base.name]

    def test_count_mismatch_raises(self):
        cluster = cluster_a(1).with_device_pool((a100_80gb(), a100_80gb()))
        with pytest.raises(ValueError, match="2 slots.*3 pipeline"):
            enumerate_placements(device_classes(cluster), 3)

    def test_ceiling_raises_instead_of_truncating(self):
        base = a100_80gb()
        pool = tuple(derated(base, 1.0 + 0.05 * i) for i in range(1, 9))
        cluster = cluster_a(1).with_device_pool(pool)
        classes = device_classes(cluster)
        with pytest.raises(ValueError, match="exceed"):
            enumerate_placements(classes, 8, max_placements=1000)
        assert len(enumerate_placements(classes, 8, max_placements=40320)) == 40320
        assert MAX_PLACEMENTS < 40320

    def test_apply_plan_placement_reorders_pool(self, tiny_spec, tiny_train):
        base = a100_80gb()
        pool = (base, derated(base, 1.4), base)
        ctx = _pool_ctx(pool, tiny_spec, tiny_train)
        plan = plan_adapipe(ctx)
        placed = apply_plan_placement(ctx.cluster, plan)
        assert [d.name for d in placed.device_pool] == plan.metadata[
            "placement_devices"
        ]
        # A plan without placement metadata leaves the cluster alone.
        assert apply_plan_placement(ctx.cluster, plan.with_metadata()) is not None


class TestSweepBoundHelpers:
    """The pool-aware pieces of the admissible pruning bound."""

    def test_scale_floor_is_min_pool_factor(self):
        base = a100_80gb()
        cluster = cluster_a(1).with_device_pool(
            (base, derated(base, 1.4), ascend910_32gb())
        )
        floor = best_placement_scale_floor(cluster, 3)
        assert floor == min(
            cluster.pool_compute_factor(d) for d in cluster.device_pool
        )
        assert best_placement_scale_floor(cluster_a(1), 3) == 1.0

    def test_capacity_sum_is_placement_invariant(self):
        base = a100_80gb()
        small = ascend910_32gb()
        forward = cluster_a(1).with_device_pool((base, small, base))
        backward = cluster_a(1).with_device_pool((small, base, base))
        assert pool_capacity_sum(forward, 3) == pool_capacity_sum(backward, 3)
        assert pool_capacity_sum(forward, 3) == float(
            2 * base.usable_memory_bytes + small.usable_memory_bytes
        )
        assert pool_capacity_sum(cluster_a(1), 3) is None
