"""Tests for simulator-guided partition refinement."""


from repro.core.evaluate import evaluate_plan
from repro.core.refine import _boundary_moves, plan_adapipe_refined, refine_partition
from repro.core.search import plan_adapipe, plan_even_partitioning


class TestBoundaryMoves:
    def test_generates_both_directions(self):
        moves = _boundary_moves([(0, 4), (4, 8)])
        assert [(0, 3), (3, 8)] in moves
        assert [(0, 5), (5, 8)] in moves

    def test_never_empties_a_stage(self):
        moves = _boundary_moves([(0, 1), (1, 8)])
        for move in moves:
            for lo, hi in move:
                assert hi > lo

    def test_move_count(self):
        # p-1 cuts, two directions each, minus blocked ones.
        moves = _boundary_moves([(0, 3), (3, 6), (6, 9)])
        assert len(moves) == 4


class TestRefinement:
    def test_never_worse_than_input(self, gpt3_ctx):
        base = plan_adapipe(gpt3_ctx)
        refined = refine_partition(gpt3_ctx, base, max_rounds=2)
        base_time = evaluate_plan(base, gpt3_ctx.cluster).iteration_time
        refined_time = evaluate_plan(refined, gpt3_ctx.cluster).iteration_time
        assert refined_time <= base_time + 1e-12

    def test_refined_at_least_matches_even_partitioning(self, gpt3_ctx):
        """The refinement closes the model-vs-simulator gap that can leave
        raw AdaPipe a hair behind the even partition."""
        refined = plan_adapipe_refined(gpt3_ctx)
        even = plan_even_partitioning(gpt3_ctx)
        refined_time = evaluate_plan(refined, gpt3_ctx.cluster).iteration_time
        even_time = evaluate_plan(even, gpt3_ctx.cluster).iteration_time
        assert refined_time <= even_time * 1.001

    def test_label_marks_refinement(self, gpt3_ctx):
        base = plan_adapipe(gpt3_ctx)
        refined = refine_partition(gpt3_ctx, base, max_rounds=4)
        if refined is not base:
            assert refined.method.endswith("+refine")
            assert refined.modeled_iteration_time is not None

    def test_infeasible_plan_passes_through(self, gpt3_ctx):
        base = plan_adapipe(gpt3_ctx)
        broken = type(base)(
            method=base.method,
            parallel=base.parallel,
            train=base.train,
            stages=base.stages,
            feasible=False,
            hidden_size=base.hidden_size,
        )
        assert refine_partition(gpt3_ctx, broken) is broken

    def test_refined_plan_still_covers_all_layers(self, gpt3_ctx):
        refined = plan_adapipe_refined(gpt3_ctx)
        assert refined.stages[0].layer_start == 0
        assert refined.stages[-1].layer_end == len(gpt3_ctx.layers)
        for a, b in zip(refined.stages, refined.stages[1:]):
            assert a.layer_end == b.layer_start
