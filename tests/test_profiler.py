"""Tests for repro.profiler — roofline timing, memory model, profiler."""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.hardware.cluster import cluster_a
from repro.hardware.device import a100_80gb
from repro.model.layers import LayerKind, build_layer_sequence
from repro.model.spec import gpt3_175b
from repro.model.units import OpDesc, OpKind, units_for_layer
from repro.profiler.memory import MemoryModel, StageMemory
from repro.profiler.profiler import Profiler
from repro.profiler.timing import op_time, unit_backward_time, unit_forward_time


@pytest.fixture
def train():
    return TrainingConfig(sequence_length=4096, global_batch_size=8)


@pytest.fixture
def parallel():
    return ParallelConfig(8, 8, 1)


class TestRooflineTiming:
    def test_compute_bound_gemm(self):
        device = a100_80gb()
        op = OpDesc(OpKind.GEMM, flops_forward=1e12, flops_backward=2e12,
                    moved_elements=1e6)
        t = op_time(op, device)
        assert t == pytest.approx(
            1e12 / device.achieved_flops(OpKind.GEMM)
            + device.kernel_launch_overhead
        )

    def test_bandwidth_bound_elementwise(self):
        device = a100_80gb()
        op = OpDesc(OpKind.ELEMENTWISE, flops_forward=1e6, flops_backward=1e6,
                    moved_elements=1e9)
        t = op_time(op, device)
        assert t == pytest.approx(
            2e9 / device.memory_bandwidth + device.kernel_launch_overhead
        )

    def test_backward_slower_than_forward(self, train):
        device = a100_80gb()
        for unit in units_for_layer(LayerKind.FFN, gpt3_175b(), train, 8):
            assert unit_backward_time(unit, device) > unit_forward_time(unit, device)

    def test_launch_overhead_floors_tiny_ops(self):
        device = a100_80gb()
        op = OpDesc(OpKind.NORM, 1.0, 1.0, 1.0)
        assert op_time(op, device) >= device.kernel_launch_overhead


class TestMemoryModel:
    def test_static_bytes_formula(self, train, parallel):
        spec = gpt3_175b()
        model = MemoryModel(spec, train, parallel)
        layers = build_layer_sequence(spec)[:5]
        params = sum(layer.params for layer in layers)
        t, d = 8, 1
        expected = (
            2 * params / t  # fp16 params
            + 2 * params / t  # fp16 grads
            + 8 * params / (t * d)  # FP32 Adam moments
            + 4 * params / (t * d)  # FP32 master weights
        )
        assert model.static_bytes(layers) == pytest.approx(expected)

    def test_zero_stage1_shards_optimizer_by_dp(self, train):
        spec = gpt3_175b()
        layers = build_layer_sequence(spec)[:5]
        d1 = MemoryModel(spec, train, ParallelConfig(8, 4, 1)).static_bytes(layers)
        d2 = MemoryModel(spec, train, ParallelConfig(8, 4, 2)).static_bytes(layers)
        assert d2 < d1  # optimizer state shrinks with d

    def test_in_flight_is_p_minus_s(self, train):
        model = MemoryModel(gpt3_175b(), train, ParallelConfig(8, 8, 1))
        assert [model.in_flight(s) for s in range(8)] == [8, 7, 6, 5, 4, 3, 2, 1]

    def test_buffer_excludes_always_saved(self, train, parallel):
        spec = gpt3_175b()
        model = MemoryModel(spec, train, parallel)
        buffer = model.recompute_buffer_bytes()
        all_units = 0.0
        for kind in (LayerKind.ATTENTION, LayerKind.FFN):
            for unit in units_for_layer(kind, spec, train, 8):
                all_units += model.unit_saved_bytes(unit)
        assert 0 < buffer < all_units

    def test_stage_memory_total(self):
        memory = StageMemory(
            static_bytes=10.0,
            buffer_bytes=2.0,
            saved_per_microbatch=3.0,
            in_flight_microbatches=4,
        )
        assert memory.total_bytes == 10 + 2 + 12
        assert memory.fits(24) and not memory.fits(23)

    def test_intermediate_budget_subtracts_static_and_buffer(self, train, parallel):
        spec = gpt3_175b()
        model = MemoryModel(spec, train, parallel)
        layers = build_layer_sequence(spec)[:10]
        budget = model.intermediate_budget(0, layers, 80 * 1024**3)
        assert budget == pytest.approx(
            80 * 1024**3
            - model.static_bytes(layers)
            - model.recompute_buffer_bytes()
        )


class TestProfiler:
    def test_layer_profiles_are_cached(self, train, parallel):
        profiler = Profiler(cluster_a(), gpt3_175b(), train, parallel)
        first = profiler.profile_layer(LayerKind.ATTENTION)
        assert profiler.profile_layer(LayerKind.ATTENTION) is first

    def test_profile_layers_follows_sequence(self, train, parallel):
        profiler = Profiler(cluster_a(), gpt3_175b(), train, parallel)
        layers = build_layer_sequence(gpt3_175b())[:4]
        profiles = profiler.profile_layers(layers)
        assert [p.kind for p in profiles] == [layer.kind for layer in layers]

    def test_noise_is_deterministic(self, train, parallel):
        a = Profiler(cluster_a(), gpt3_175b(), train, parallel, noise=0.1, seed=3)
        b = Profiler(cluster_a(), gpt3_175b(), train, parallel, noise=0.1, seed=3)
        pa = a.profile_layer(LayerKind.FFN)
        pb = b.profile_layer(LayerKind.FFN)
        assert pa.time_forward == pb.time_forward

    def test_noise_changes_with_seed(self, train, parallel):
        a = Profiler(cluster_a(), gpt3_175b(), train, parallel, noise=0.1, seed=3)
        b = Profiler(cluster_a(), gpt3_175b(), train, parallel, noise=0.1, seed=4)
        assert a.profile_layer(LayerKind.FFN).time_forward != (
            b.profile_layer(LayerKind.FFN).time_forward
        )

    def test_noise_bounded(self, train, parallel):
        clean = Profiler(cluster_a(), gpt3_175b(), train, parallel)
        noisy = Profiler(cluster_a(), gpt3_175b(), train, parallel, noise=0.05)
        for kind in LayerKind:
            base = clean.profile_layer(kind).time_forward
            jittered = noisy.profile_layer(kind).time_forward
            assert abs(jittered - base) / base < 0.06

    def test_tensor_parallel_comm_attached_to_closing_units(self, train):
        with_tp = Profiler(cluster_a(), gpt3_175b(), train, ParallelConfig(8, 8, 1))
        no_tp = Profiler(cluster_a(), gpt3_175b(), train, ParallelConfig(1, 8, 8))

        def unit_time(profiler, name):
            profile = profiler.profile_layer(LayerKind.ATTENTION)
            return next(u for u in profile.units if u.name == name)

        # attn.out carries the forward all-reduce; with t=8 the projection
        # is 8x smaller but the collective is added, so compare against the
        # t=1 unit scaled down.
        out_tp = unit_time(with_tp, "attn.out")
        out_plain = unit_time(no_tp, "attn.out")
        assert out_tp.time_forward > out_plain.time_forward / 8
        # attn.k carries no forward collective: near-linear scaling.
        k_tp = unit_time(with_tp, "attn.k")
        k_plain = unit_time(no_tp, "attn.k")
        assert k_tp.time_forward < k_plain.time_forward / 2

    def test_recompute_cost_equals_forward_time(self, train, parallel):
        profiler = Profiler(cluster_a(), gpt3_175b(), train, parallel)
        for unit in profiler.profile_layer(LayerKind.FFN).units:
            assert unit.recompute_cost == unit.time_forward

    def test_full_recompute_extra_excludes_always_saved(self, train, parallel):
        profiler = Profiler(cluster_a(), gpt3_175b(), train, parallel)
        profile = profiler.profile_layer(LayerKind.ATTENTION)
        manual = sum(
            u.time_forward for u in profile.units if not u.always_saved
        )
        assert profile.full_recompute_extra == pytest.approx(manual)
