"""Tests for the isomorphism cache (Section 5.3)."""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import StageEvaluator
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b


@pytest.fixture
def evaluator():
    ctx = PlannerContext(
        cluster_a(),
        gpt3_175b(),
        TrainingConfig(sequence_length=2048, global_batch_size=8),
        ParallelConfig(8, 4, 1),
    )
    return StageEvaluator(ctx.profiler, ctx.layers, ctx.capacity_bytes)


class TestIsomorphismCache:
    def test_isomorphic_subsequences_share_results(self, evaluator):
        # Layers 3..4 and 5..6 are both (FFN, ATT) pairs away from the ends.
        first = evaluator.evaluate(1, 3, 6)
        invocations = evaluator.inner_dp_invocations
        second = evaluator.evaluate(1, 5, 8)
        assert evaluator.inner_dp_invocations == invocations  # cache hit
        assert second is first

    def test_different_stage_recomputes(self, evaluator):
        evaluator.evaluate(1, 3, 6)
        before = evaluator.inner_dp_invocations
        evaluator.evaluate(2, 3, 6)
        assert evaluator.inner_dp_invocations == before + 1

    def test_embedding_membership_breaks_isomorphism(self, evaluator):
        with_embed = evaluator.evaluate(0, 0, 4)
        without = evaluator.evaluate(0, 2, 6)  # same length, no embedding
        assert with_embed is not without
        assert with_embed.memory.static_bytes != without.memory.static_bytes

    def test_head_membership_breaks_isomorphism(self, evaluator):
        L = evaluator.num_layers
        with_head = evaluator.evaluate(3, L - 5, L - 1)
        without = evaluator.evaluate(3, L - 7, L - 3)
        assert with_head is not without

    def test_start_kind_breaks_isomorphism(self, evaluator):
        # (ATT, FFN, ATT) vs (FFN, ATT, FFN): different unit multisets.
        att_start = evaluator.evaluate(1, 1, 3)
        ffn_start = evaluator.evaluate(1, 2, 4)
        assert att_start is not ffn_start

    def test_invocation_count_is_linear_not_quadratic(self, evaluator):
        """The O(pL^2) -> O(pL) reduction the paper claims."""
        p = 4
        L = evaluator.num_layers
        pairs = 0
        for s in range(p):
            for i in range(L):
                for j in range(i, L):
                    evaluator.evaluate(s, i, j)
                    pairs += 1
        assert pairs > L * L  # we really did sweep quadratically many
        # Unique classes: stage x emb membership x head membership x
        # (#att, #ffn) combinations — linear in L, far below the sweep.
        assert evaluator.inner_dp_invocations <= 16 * p * L


class TestStageEvalContents:
    def test_forward_time_is_sum_of_units(self, evaluator):
        eval_ = evaluator.evaluate(0, 0, 4)
        profiles = [
            evaluator.profiler.profile_layer(layer.kind)
            for layer in evaluator.layers[0:5]
        ]
        assert eval_.forward == pytest.approx(
            sum(p.time_forward for p in profiles)
        )

    def test_backward_at_least_fixed_backward(self, evaluator):
        eval_ = evaluator.evaluate(0, 0, 4)
        profiles = [
            evaluator.profiler.profile_layer(layer.kind)
            for layer in evaluator.layers[0:5]
        ]
        fixed = sum(p.time_backward for p in profiles)
        assert eval_.backward >= fixed - 1e-12

    def test_later_stage_saves_more(self, evaluator):
        """Less in-flight pressure => more units saved, cheaper backward."""
        early = evaluator.evaluate(0, 40, 80)
        late = evaluator.evaluate(3, 40, 80)
        assert sum(late.saved_unit_counts.values()) >= sum(
            early.saved_unit_counts.values()
        )
        assert late.backward <= early.backward + 1e-12

    def test_memory_within_capacity_when_feasible(self, evaluator):
        eval_ = evaluator.evaluate(0, 0, 20)
        if eval_.feasible:
            assert eval_.memory.total_bytes <= evaluator.capacity_bytes + 1e-6

    def test_oversized_stage_is_infeasible(self, evaluator):
        L = evaluator.num_layers
        eval_ = evaluator.evaluate(0, 0, L - 1)  # whole 175B model on stage 0
        assert not eval_.feasible

    def test_always_saved_units_counted(self, evaluator):
        eval_ = evaluator.evaluate(3, 1, 4)  # ATT FFN ATT FFN
        assert eval_.saved_unit_counts.get("attn.out", 0) == 2
        assert eval_.saved_unit_counts.get("ffn.out", 0) == 2
