"""Tests for repro.model.tensors."""

import pytest

from repro.model.tensors import TensorShape, ceil_div, gib, mib


class TestTensorShape:
    def test_elements_and_bytes(self):
        shape = TensorShape((4096, 1, 12288), bytes_per_value=2)
        assert shape.elements == 4096 * 12288
        assert shape.bytes == 2 * 4096 * 12288

    def test_scalar_shape(self):
        assert TensorShape((), bytes_per_value=4).elements == 1

    def test_default_width_is_fp16(self):
        assert TensorShape((10,)).bytes == 20


class TestUnitHelpers:
    def test_gib(self):
        assert gib(1024**3) == 1.0
        assert gib(80 * 1024**3) == 80.0

    def test_mib(self):
        assert mib(1024**2) == 1.0

    @pytest.mark.parametrize(
        "a,b,expected", [(10, 3, 4), (9, 3, 3), (1, 10, 1), (0, 5, 0)]
    )
    def test_ceil_div(self, a, b, expected):
        assert ceil_div(a, b) == expected
