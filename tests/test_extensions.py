"""Tests for the extension baselines (sqrt(L), BPipe, interleaved)."""

import pytest

from repro.baselines.extensions import (
    evaluate_interleaved,
    plan_bpipe,
    plan_interleaved,
    plan_sqrt_checkpoint,
)
from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import evaluate_plan
from repro.core.search import PlannerContext, plan_adapipe, plan_policy
from repro.core.strategies import RecomputePolicy
from repro.hardware.cluster import cluster_a


@pytest.fixture
def pressured_ctx(gpt3):
    """GPT-3 at seq 8192: DAPPLE-Non OOMs, balanced/recompute methods fit."""
    train = TrainingConfig(sequence_length=8192, global_batch_size=16)
    return PlannerContext(cluster_a(8), gpt3, train, ParallelConfig(8, 8, 1))


class TestSqrtCheckpoint:
    def test_uses_less_memory_than_full_recompute(self, pressured_ctx):
        sqrt_plan = plan_sqrt_checkpoint(pressured_ctx)
        full = plan_policy(pressured_ctx, RecomputePolicy.FULL, "DAPPLE-Full")
        assert sqrt_plan.feasible
        assert max(sqrt_plan.peak_memory_bytes()) <= max(full.peak_memory_bytes())

    def test_slower_than_adapipe(self, pressured_ctx):
        """Coarse segments recompute everything; AdaPipe's unit knapsack
        dominates — the Section 2.2 motivation."""
        sqrt_eval = evaluate_plan(plan_sqrt_checkpoint(pressured_ctx), pressured_ctx.cluster)
        ada_eval = evaluate_plan(plan_adapipe(pressured_ctx), pressured_ctx.cluster)
        assert sqrt_eval.iteration_time > ada_eval.iteration_time

    def test_saved_units_are_segment_boundaries(self, pressured_ctx):
        plan = plan_sqrt_checkpoint(pressured_ctx)
        for stage in plan.stages:
            assert set(stage.saved_unit_counts) == {"segment.boundary"}
            assert 1 <= stage.saved_unit_counts["segment.boundary"] <= stage.num_layers

    def test_infeasible_when_nothing_fits(self, gpt3):
        train = TrainingConfig(sequence_length=8192, global_batch_size=16)
        ctx = PlannerContext(
            cluster_a(8),
            gpt3,
            train,
            ParallelConfig(8, 8, 1),
            memory_limit_bytes=1 * 1024**3,
        )
        # A 2-stage pipeline of the 175B model: static state alone exceeds
        # any device, so no segment length can rescue it.
        tiny = PlannerContext(cluster_a(8), gpt3, train, ParallelConfig(8, 2, 1))
        assert not plan_sqrt_checkpoint(tiny).feasible
        del ctx

    def test_segment_length_one_equals_layerwise(self, pressured_ctx):
        from repro.baselines.extensions import sqrt_checkpoint_stage_eval

        layers = pressured_ctx.layers[1:9]
        fixed = sqrt_checkpoint_stage_eval(
            pressured_ctx, 0, layers, pressured_ctx.hard_capacity_bytes, segment_length=1
        )
        assert fixed.saved_unit_counts["segment.boundary"] == len(layers)


class TestBPipe:
    def test_balances_memory_across_pairs(self, pressured_ctx):
        bpipe = plan_bpipe(pressured_ctx)
        non = plan_policy(pressured_ctx, RecomputePolicy.NONE, "DAPPLE-Non")
        assert max(bpipe.peak_memory_bytes()) < max(non.peak_memory_bytes())

    def test_rescues_dapple_non_from_oom(self, pressured_ctx):
        non = evaluate_plan(
            plan_policy(pressured_ctx, RecomputePolicy.NONE, "DAPPLE-Non"),
            pressured_ctx.cluster,
        )
        bpipe = evaluate_plan(plan_bpipe(pressured_ctx), pressured_ctx.cluster)
        assert non.iteration_time is None  # OOM
        assert bpipe.iteration_time is not None

    def test_faster_than_full_recompute_when_it_fits(self, pressured_ctx):
        bpipe = evaluate_plan(plan_bpipe(pressured_ctx), pressured_ctx.cluster)
        full = evaluate_plan(
            plan_policy(pressured_ctx, RecomputePolicy.FULL, "DAPPLE-Full"),
            pressured_ctx.cluster,
        )
        assert bpipe.iteration_time < full.iteration_time

    def test_transfer_overhead_nonzero(self, pressured_ctx):
        bpipe = plan_bpipe(pressured_ctx, overlap_fraction=0.0)
        non = plan_policy(pressured_ctx, RecomputePolicy.NONE, "DAPPLE-Non")
        # With no overlap, stage 0 pays visible eviction time.
        assert bpipe.stages[0].micro_step_time > non.stages[0].micro_step_time

    def test_cannot_balance_past_total_capacity(self, gpt3):
        train = TrainingConfig(sequence_length=16384, global_batch_size=8)
        ctx = PlannerContext(cluster_a(8), gpt3, train, ParallelConfig(8, 8, 1))
        assert not plan_bpipe(ctx).feasible  # average load alone exceeds 80 GB


class TestInterleaved:
    def test_builds_v_times_p_stages(self, pressured_ctx):
        plan = plan_interleaved(pressured_ctx, chunks=2)
        assert len(plan.stages) == 2 * 8

    def test_reduces_bubble_ratio(self, pressured_ctx):
        interleaved = evaluate_interleaved(pressured_ctx, RecomputePolicy.FULL, 2)
        plain = evaluate_plan(
            plan_policy(pressured_ctx, RecomputePolicy.FULL, "DAPPLE-Full"),
            pressured_ctx.cluster,
        )
        assert interleaved.simulation.bubble_ratio < plain.simulation.bubble_ratio

    def test_oom_detection_through_simulation(self, gpt3):
        train = TrainingConfig(sequence_length=16384, global_batch_size=8)
        ctx = PlannerContext(cluster_a(8), gpt3, train, ParallelConfig(8, 8, 1))
        evaluation = evaluate_interleaved(ctx, RecomputePolicy.NONE, 2)
        assert evaluation.oom
