"""Tests for the synthetic text dataset."""

import numpy as np

from repro.training.data import SyntheticTextDataset


class TestGeneration:
    def test_deterministic_given_seeds(self):
        a = SyntheticTextDataset(seed=7).generate(500, stream_seed=1)
        b = SyntheticTextDataset(seed=7).generate(500, stream_seed=1)
        assert np.array_equal(a, b)

    def test_different_stream_seeds_differ(self):
        dataset = SyntheticTextDataset(seed=7)
        assert not np.array_equal(
            dataset.generate(500, stream_seed=1), dataset.generate(500, stream_seed=2)
        )

    def test_tokens_in_vocab(self):
        dataset = SyntheticTextDataset(vocab_size=32)
        stream = dataset.generate(1000)
        assert stream.min() >= 0 and stream.max() < 32

    def test_stream_has_learnable_structure(self):
        """Empirical unigram entropy must sit well below log2(vocab) —
        otherwise there is nothing for the convergence experiment to learn."""
        dataset = SyntheticTextDataset(vocab_size=64)
        stream = dataset.generate(20_000)
        counts = np.bincount(stream, minlength=64).astype(float)
        probs = counts / counts.sum()
        nonzero = probs[probs > 0]
        entropy = -(nonzero * np.log2(nonzero)).sum()
        assert entropy < 0.9 * np.log2(64)


class TestBatches:
    def test_shapes(self):
        dataset = SyntheticTextDataset()
        batches = list(dataset.batches(batch_size=3, sequence_length=16, num_batches=4))
        assert len(batches) == 4
        for tokens, targets in batches:
            assert tokens.shape == (3, 16)
            assert targets.shape == (3, 16)

    def test_targets_are_shifted_tokens(self):
        dataset = SyntheticTextDataset()
        tokens, targets = next(dataset.batches(2, 8, 1))
        assert np.array_equal(tokens[:, 1:], targets[:, :-1])

    def test_batches_are_disjoint_slices(self):
        dataset = SyntheticTextDataset()
        (t1, _), (t2, _) = list(dataset.batches(1, 8, 2))
        assert not np.array_equal(t1, t2)
