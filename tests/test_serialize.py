"""Tests for plan JSON serialization."""

import json

import pytest

from repro.core.search import plan_adapipe, plan_policy
from repro.core.serialize import (
    PlanFormatError,
    dump_plan,
    load_plan,
    plan_from_dict,
    plan_to_dict,
    validate_plan,
)
from repro.core.strategies import RecomputePolicy


class TestRoundTrip:
    def test_adapipe_plan_round_trips(self, gpt3_ctx, tmp_path):
        plan = plan_adapipe(gpt3_ctx)
        path = tmp_path / "plan.json"
        dump_plan(plan, str(path))
        loaded = load_plan(str(path))
        assert loaded.method == plan.method
        assert loaded.parallel == plan.parallel
        assert loaded.train == plan.train
        assert loaded.layer_counts() == plan.layer_counts()
        assert loaded.saved_unit_counts() == plan.saved_unit_counts()
        assert loaded.modeled_iteration_time == plan.modeled_iteration_time
        assert loaded.hidden_size == plan.hidden_size

    def test_stage_memory_preserved(self, gpt3_ctx):
        plan = plan_policy(gpt3_ctx, RecomputePolicy.FULL, "DAPPLE-Full")
        loaded = plan_from_dict(plan_to_dict(plan))
        for original, restored in zip(plan.stages, loaded.stages):
            assert restored.memory.total_bytes == original.memory.total_bytes

    def test_document_is_plain_json(self, gpt3_ctx):
        plan = plan_adapipe(gpt3_ctx)
        text = json.dumps(plan_to_dict(plan))
        assert "AdaPipe" in text


class TestValidation:
    def test_rejects_wrong_version(self, gpt3_ctx):
        data = plan_to_dict(plan_adapipe(gpt3_ctx))
        data["format_version"] = 99
        with pytest.raises(PlanFormatError, match="version"):
            plan_from_dict(data)

    def test_rejects_missing_fields(self):
        with pytest.raises(PlanFormatError, match="malformed"):
            plan_from_dict({"format_version": 1})

    def test_rejects_non_contiguous_stages(self, gpt3_ctx):
        data = plan_to_dict(plan_adapipe(gpt3_ctx))
        data["stages"][1]["layer_start"] += 1
        with pytest.raises(PlanFormatError, match="starts at layer"):
            plan_from_dict(data)

    def test_rejects_empty_stage(self, gpt3_ctx):
        data = plan_to_dict(plan_adapipe(gpt3_ctx))
        data["stages"][0]["layer_end"] = data["stages"][0]["layer_start"]
        with pytest.raises(PlanFormatError):
            plan_from_dict(data)

    def test_rejects_misnumbered_stage(self, gpt3_ctx):
        data = plan_to_dict(plan_adapipe(gpt3_ctx))
        data["stages"][2]["stage"] = 7
        with pytest.raises(PlanFormatError, match="stage index"):
            plan_from_dict(data)

    def test_validate_accepts_good_plan(self, gpt3_ctx):
        validate_plan(plan_adapipe(gpt3_ctx))


class TestFuzzedDocuments:
    """Random corruptions of a valid plan document must never produce a
    silently-wrong plan: either the round-trip is unchanged or a
    PlanFormatError is raised."""

    @pytest.fixture(scope="class")
    def valid_document(self, request):
        import json

        from repro.config import ParallelConfig, TrainingConfig
        from repro.core.search import PlannerContext, plan_adapipe
        from repro.hardware.cluster import cluster_a
        from repro.model.spec import tiny_gpt

        ctx = PlannerContext(
            cluster_a(1),
            tiny_gpt(num_layers=3, hidden_size=32, vocab_size=50),
            TrainingConfig(
                sequence_length=8,
                global_batch_size=4,
                micro_batch_size=1,
                sequence_parallel=False,
                flash_attention=False,
            ),
            ParallelConfig(1, 2, 1),
            memory_limit_bytes=8 * 1024**2,
        )
        return json.loads(json.dumps(plan_to_dict(plan_adapipe(ctx))))

    def test_dropping_any_top_level_key_raises(self, valid_document):
        import copy

        optional = ("modeled_iteration_time", "feasible", "hidden_size", "metadata")
        for key in list(valid_document):
            if key in optional:
                continue  # optional with defaults
            mutated = copy.deepcopy(valid_document)
            del mutated[key]
            with pytest.raises(PlanFormatError):
                plan_from_dict(mutated)

    def test_dropping_any_stage_key_raises(self, valid_document):
        import copy

        for key in list(valid_document["stages"][0]):
            if key == "params":
                continue  # optional: pre-metadata documents omit it
            mutated = copy.deepcopy(valid_document)
            del mutated["stages"][0][key]
            with pytest.raises(PlanFormatError):
                plan_from_dict(mutated)

    def test_numeric_field_type_confusion_raises(self, valid_document):
        import copy

        mutated = copy.deepcopy(valid_document)
        mutated["parallel"]["pipeline_parallel"] = "eight"
        with pytest.raises(Exception):
            plan_from_dict(mutated)

    def test_unmutated_document_round_trips(self, valid_document):
        plan = plan_from_dict(valid_document)
        assert plan_to_dict(plan) == valid_document
