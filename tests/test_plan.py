"""Tests for the plan data model."""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.plan import PipelinePlan, StagePlan, merge_unit_counts
from repro.profiler.memory import StageMemory


def _stage(stage=0, lo=0, hi=4, saved=None, fwd=1.0, bwd=2.0):
    return StagePlan(
        stage=stage,
        layer_start=lo,
        layer_end=hi,
        saved_unit_counts=saved or {"attn.out": 2, "ffn.out": 2},
        forward_time=fwd,
        backward_time=bwd,
        memory=StageMemory(10.0, 1.0, 2.0, 4 - stage),
    )


def _plan(stages):
    return PipelinePlan(
        method="Test",
        parallel=ParallelConfig(1, len(stages), 1),
        train=TrainingConfig(sequence_length=8, global_batch_size=4),
        stages=tuple(stages),
        modeled_iteration_time=1.0,
        hidden_size=64,
    )


class TestStagePlan:
    def test_num_layers(self):
        assert _stage(lo=3, hi=8).num_layers == 5

    def test_num_saved_units(self):
        assert _stage(saved={"a": 3, "b": 4}).num_saved_units == 7

    def test_micro_step_time(self):
        assert _stage(fwd=1.5, bwd=3.0).micro_step_time == pytest.approx(4.5)

    def test_to_stage_costs(self):
        costs = _stage().to_stage_costs()
        assert costs.forward == 1.0
        assert costs.backward == 2.0
        assert costs.activation_bytes == 2.0
        assert costs.static_bytes == 10.0
        assert costs.buffer_bytes == 1.0


class TestPipelinePlan:
    def test_layer_and_saved_counts(self):
        plan = _plan([_stage(0, 0, 3), _stage(1, 3, 8, saved={"x": 5})])
        assert plan.layer_counts() == (3, 5)
        assert plan.saved_unit_counts() == (4, 5)

    def test_peak_memory(self):
        plan = _plan([_stage(0), _stage(1)])
        # static 10 + buffer 1 + 2 * in_flight
        assert plan.peak_memory_bytes() == (10 + 1 + 2 * 4, 10 + 1 + 2 * 3)

    def test_describe_mentions_stages_and_method(self):
        text = _plan([_stage(0), _stage(1, 4, 8)]).describe()
        assert "Test" in text
        assert "stage 0" in text and "stage 1" in text
        assert "feasible=True" in text

    def test_stage_costs_tuple(self):
        plan = _plan([_stage(0), _stage(1)])
        assert len(plan.stage_costs()) == 2


class TestMergeUnitCounts:
    def test_merges_overlapping_keys(self):
        merged = merge_unit_counts([{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        assert merged == {"a": 1, "b": 5, "c": 4}

    def test_empty(self):
        assert merge_unit_counts([]) == {}
