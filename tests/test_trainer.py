"""Tests for the Trainer: loops, loss scaling, checkpoint/resume fidelity."""

import numpy as np
import pytest

from repro.core.search import plan_adapipe
from repro.training.data import SyntheticTextDataset
from repro.training.modules import build_model
from repro.training.trainer import Trainer

SEQ = 8
MICRO_BATCHES = 4


@pytest.fixture
def plan(tiny_ctx):
    return plan_adapipe(tiny_ctx)


@pytest.fixture
def dataset(tiny_spec):
    return SyntheticTextDataset(vocab_size=tiny_spec.vocab_size)


def _trainer(tiny_spec, plan, seed=0, **kwargs):
    return Trainer(model=build_model(tiny_spec, seed=seed), plan=plan, **kwargs)


class TestTrainingLoop:
    def test_loss_decreases(self, tiny_spec, plan, dataset):
        trainer = _trainer(tiny_spec, plan)
        losses = trainer.train(dataset.batches(MICRO_BATCHES, SEQ, 30))
        assert losses[-1] < losses[0]
        assert trainer.step == 30

    def test_history_records_every_step(self, tiny_spec, plan, dataset):
        trainer = _trainer(tiny_spec, plan)
        trainer.train(dataset.batches(MICRO_BATCHES, SEQ, 5))
        assert len(trainer.history) == 5
        assert all(not record.skipped for record in trainer.history)
        assert all(record.peak_context_bytes > 0 for record in trainer.history)

    def test_loss_scaling_path_is_exact(self, tiny_spec, plan, dataset):
        """Scaling then unscaling must not change the math (float64)."""
        plain = _trainer(tiny_spec, plan, seed=1)
        scaled = _trainer(tiny_spec, plan, seed=1, use_loss_scaling=True)
        plain_losses = plain.train(dataset.batches(MICRO_BATCHES, SEQ, 8))
        scaled_losses = scaled.train(dataset.batches(MICRO_BATCHES, SEQ, 8))
        assert plain_losses == pytest.approx(scaled_losses, abs=1e-9)

    def test_evaluate_does_not_update(self, tiny_spec, plan, dataset):
        trainer = _trainer(tiny_spec, plan)
        before = {
            n: p.data.copy() for n, p in trainer.model.named_parameters()
        }
        loss = trainer.evaluate(dataset.batches(MICRO_BATCHES, SEQ, 2, stream_seed=9))
        assert np.isfinite(loss)
        for name, parameter in trainer.model.named_parameters():
            assert np.array_equal(parameter.data, before[name])


class TestCheckpointResume:
    def test_resume_is_bit_exact(self, tiny_spec, plan, dataset, tmp_path):
        """Train 6 steps straight vs 3 + checkpoint + resume + 3."""
        straight = _trainer(tiny_spec, plan, seed=2)
        straight_losses = straight.train(dataset.batches(MICRO_BATCHES, SEQ, 6))

        first = _trainer(tiny_spec, plan, seed=2)
        first_losses = first.train(dataset.batches(MICRO_BATCHES, SEQ, 6))
        # Rebuild the same first-3-steps trainer and checkpoint mid-way.
        part = _trainer(tiny_spec, plan, seed=2)
        batches = list(dataset.batches(MICRO_BATCHES, SEQ, 6))
        part.train(iter(batches[:3]))
        path = str(tmp_path / "ckpt.npz")
        part.save_checkpoint(path)

        resumed = _trainer(tiny_spec, plan, seed=999)  # wrong init on purpose
        resumed.load_checkpoint(path)
        assert resumed.step == 3
        resumed_losses = resumed.train(iter(batches[3:]))
        assert resumed_losses == pytest.approx(straight_losses[3:], abs=0)
        del first_losses

    def test_checkpoint_restores_weights(self, tiny_spec, plan, dataset, tmp_path):
        trainer = _trainer(tiny_spec, plan, seed=3)
        trainer.train(dataset.batches(MICRO_BATCHES, SEQ, 2))
        path = str(tmp_path / "ckpt.npz")
        trainer.save_checkpoint(path)
        snapshot = {
            n: p.data.copy() for n, p in trainer.model.named_parameters()
        }
        trainer.train(dataset.batches(MICRO_BATCHES, SEQ, 2, stream_seed=5))
        trainer.load_checkpoint(path)
        for name, parameter in trainer.model.named_parameters():
            assert np.array_equal(parameter.data, snapshot[name]), name

    def test_rejects_wrong_model(self, tiny_spec, tiny_llama_spec, plan, tmp_path):
        trainer = _trainer(tiny_spec, plan, seed=0)
        path = str(tmp_path / "ckpt.npz")
        trainer.save_checkpoint(path)
        from repro.config import ParallelConfig, TrainingConfig
        from repro.core.search import PlannerContext, plan_adapipe
        from repro.hardware.cluster import cluster_a

        other_ctx = PlannerContext(
            cluster_a(1),
            tiny_llama_spec,
            TrainingConfig(
                sequence_length=8,
                global_batch_size=4,
                micro_batch_size=1,
                sequence_parallel=False,
                flash_attention=False,
            ),
            ParallelConfig(1, 2, 1),
            memory_limit_bytes=8 * 1024**2,
        )
        other = Trainer(
            model=build_model(tiny_llama_spec, seed=0),
            plan=plan_adapipe(other_ctx),
        )
        with pytest.raises(ValueError, match="checkpoint is for"):
            other.load_checkpoint(path)
