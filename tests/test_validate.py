"""Tests for the self-validation battery."""

from repro.experiments.cli import main
from repro.experiments.validate import render_validation, run_validation


class TestValidation:
    def test_all_checks_pass(self):
        results = run_validation()
        assert len(results) == 12
        for name, passed, detail in results:
            assert passed, f"{name}: {detail}"

    def test_render_marks_status(self):
        text = render_validation(run_validation())
        assert "12/12 consistency checks passed" in text
        assert "FAIL" not in text

    def test_cli_exit_code(self, capsys):
        assert main(["validate"]) == 0
        assert "consistency checks passed" in capsys.readouterr().out

    def test_render_reports_failures(self):
        text = render_validation([("fake check", False, "boom")])
        assert "[FAIL] fake check" in text
        assert "0/1" in text
