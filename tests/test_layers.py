"""Tests for repro.model.layers — the partitionable layer sequence."""

from repro.model.layers import (
    LayerKind,
    build_layer_sequence,
    describe_partition,
    sequence_params,
)
from repro.model.spec import gpt3_175b, tiny_gpt


class TestLayerSequence:
    def test_length_is_2l_plus_2(self):
        spec = tiny_gpt(num_layers=3)
        assert len(build_layer_sequence(spec)) == 2 * 3 + 2

    def test_structure_alternates(self):
        layers = build_layer_sequence(tiny_gpt(num_layers=2))
        kinds = [layer.kind for layer in layers]
        assert kinds == [
            LayerKind.EMBEDDING,
            LayerKind.ATTENTION,
            LayerKind.FFN,
            LayerKind.ATTENTION,
            LayerKind.FFN,
            LayerKind.HEAD,
        ]

    def test_indices_are_positional(self):
        layers = build_layer_sequence(tiny_gpt(num_layers=2))
        assert [layer.index for layer in layers] == list(range(6))

    def test_block_indices(self):
        layers = build_layer_sequence(tiny_gpt(num_layers=2))
        assert layers[0].block_index == -1
        assert layers[1].block_index == layers[2].block_index == 0
        assert layers[3].block_index == layers[4].block_index == 1
        assert layers[-1].block_index == -1

    def test_is_transformer_flag(self):
        layers = build_layer_sequence(tiny_gpt(num_layers=1))
        assert not layers[0].is_transformer
        assert layers[1].is_transformer and layers[2].is_transformer
        assert not layers[-1].is_transformer

    def test_sequence_params_sums_to_total(self):
        spec = gpt3_175b()
        layers = build_layer_sequence(spec)
        assert sequence_params(layers) == spec.total_params()

    def test_gpt3_sequence_is_194_layers(self):
        assert len(build_layer_sequence(gpt3_175b())) == 194

    def test_describe_partition_mentions_all_stages(self):
        layers = build_layer_sequence(tiny_gpt(num_layers=2))
        text = describe_partition(layers, [0, 3])
        assert "stage 0" in text and "stage 1" in text
        assert "[0, 3)" in text and "[3, 6)" in text
