"""Tests for dropout with seeded-mask recomputation.

Dropout makes recomputation genuinely hard: a naive replay would draw a
*different* mask and silently corrupt gradients. The engine regenerates
masks from a (layer seed, rng tag, unit) triple — the RNG-state-stashing
trick real checkpoint implementations use — and these tests pin exactly
that: identity with the trick, corruption without it.
"""

import numpy as np
import pytest

from repro.config import TrainingConfig
from repro.model.layers import LayerKind
from repro.model.spec import gpt3_175b, tiny_gpt, tiny_llama
from repro.model.units import units_for_layer
from repro.training import ops
from repro.training.modules import build_model


def _batch(spec, seed=0, batch=2, seq=8):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, spec.vocab_size, size=(batch, seq)),
        rng.integers(0, spec.vocab_size, size=(batch, seq)),
    )


def _grads(model):
    return {
        n: p.grad.copy() for n, p in model.named_parameters() if p.grad is not None
    }


class TestDropoutOp:
    def test_zero_prob_is_identity(self):
        x = np.random.default_rng(0).normal(size=(3, 4))
        out, cache = ops.dropout(x, 0.0, np.random.default_rng(1))
        assert out is x
        assert np.array_equal(ops.dropout_backward(cache, x), x)

    def test_inverted_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = np.ones((200, 200))
        out, _ = ops.dropout(x, 0.25, rng)
        assert out.mean() == pytest.approx(1.0, rel=0.05)
        unique = np.unique(out)
        assert len(unique) == 2
        assert unique[0] == 0.0
        assert unique[1] == pytest.approx(1 / 0.75)

    def test_backward_masks_gradient(self):
        rng = np.random.default_rng(0)
        x = np.ones((10, 10))
        out, cache = ops.dropout(x, 0.5, rng)
        grad = ops.dropout_backward(cache, np.ones_like(x))
        assert np.array_equal(grad == 0.0, out == 0.0)


class TestSeededRecompute:
    @pytest.mark.parametrize("spec_fn", [tiny_gpt, tiny_llama])
    def test_recompute_identity_with_dropout(self, spec_fn):
        """The headline: full recomputation under active dropout is still
        bit-exact, because masks are regenerated from the stored tag."""
        spec = spec_fn(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=1, dropout=0.2)
        tokens, targets = _batch(spec)
        loss_saved = model.loss_and_grad(tokens, targets, rng_tag=7)
        reference = _grads(model)
        model.zero_grad()
        loss_ckpt = model.loss_and_grad(
            tokens, targets, [set() for _ in model.layers], rng_tag=7
        )
        assert loss_saved == loss_ckpt
        for name, grad in _grads(model).items():
            assert np.array_equal(grad, reference[name]), name

    def test_different_tags_give_different_masks(self):
        spec = tiny_gpt(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=1, dropout=0.2)
        tokens, targets = _batch(spec)
        loss_a = model.loss_and_grad(tokens, targets, rng_tag=1)
        model.zero_grad()
        loss_b = model.loss_and_grad(tokens, targets, rng_tag=2)
        assert loss_a != loss_b

    def test_same_tag_is_deterministic(self):
        spec = tiny_gpt(num_layers=2, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=1, dropout=0.2)
        tokens, targets = _batch(spec)
        loss_a = model.loss_and_grad(tokens, targets, rng_tag=3)
        model.zero_grad()
        loss_b = model.loss_and_grad(tokens, targets, rng_tag=3)
        assert loss_a == loss_b

    def test_wrong_tag_on_replay_would_corrupt(self):
        """Negative control: masks from a different tag change the loss —
        the seeding is load-bearing, not decorative."""
        spec = tiny_gpt(num_layers=1, hidden_size=32, vocab_size=40)
        model = build_model(spec, seed=1, dropout=0.3)
        layer = model.layers[1]  # the attention layer
        x = np.random.default_rng(0).normal(size=(1, 8, 32))
        layer.set_rng_tag(1)
        out_a, ctx = layer.forward(x, set())
        # Tamper with the stored tag, as a buggy replay would.
        ctx.rng_tag = 99
        layer.set_rng_tag(99)
        out_b, _ = layer.forward(x, set())
        assert not np.array_equal(out_a, out_b)

    def test_pipelined_training_with_dropout_decreases_loss(self, tiny_ctx, tiny_spec):
        from repro.core.search import plan_adapipe
        from repro.training.data import SyntheticTextDataset
        from repro.training.optimizer import Adam
        from repro.training.pipeline_exec import train_with_plan

        plan = plan_adapipe(tiny_ctx)
        model = build_model(tiny_spec, seed=2, dropout=0.1)
        dataset = SyntheticTextDataset(vocab_size=tiny_spec.vocab_size)
        losses = train_with_plan(
            model, plan, dataset.batches(4, 8, 25),
            Adam(model.named_parameters(), lr=3e-3),
        )
        assert losses[-1] < losses[0]

    def test_executor_varies_masks_across_micro_batches(self, tiny_ctx, tiny_spec):
        """Identical micro-batch contents must still see different masks
        (per-micro-batch rng tags), else dropout degenerates."""
        from repro.core.search import plan_adapipe
        from repro.training.pipeline_exec import PipelineExecutor

        plan = plan_adapipe(tiny_ctx)
        model = build_model(tiny_spec, seed=3, dropout=0.3)
        tokens = np.tile(np.arange(8) % tiny_spec.vocab_size, (4, 1))
        targets = tokens.copy()
        executor = PipelineExecutor(model, plan)
        stats = executor.train_step(tokens, targets)
        # With per-micro-batch masks the per-micro-batch losses differ, so
        # re-running the identical batch in the next iteration (different
        # tags) changes the mean loss even with frozen weights.
        model.zero_grad()
        stats2 = executor.train_step(tokens, targets)
        assert stats.loss != stats2.loss


class TestDropoutMemoryModel:
    def test_masks_enlarge_always_saved_units(self):
        spec = gpt3_175b()
        base = TrainingConfig(sequence_length=4096, global_batch_size=8)
        dropped = TrainingConfig(
            sequence_length=4096, global_batch_size=8, hidden_dropout=0.1
        )
        for kind in (LayerKind.ATTENTION, LayerKind.FFN):
            plain = units_for_layer(kind, spec, base, 8)
            masked = units_for_layer(kind, spec, dropped, 8)
            closing_plain = next(u for u in plain if u.always_saved)
            closing_masked = next(u for u in masked if u.always_saved)
            assert closing_masked.saved_elements > closing_plain.saved_elements

    def test_attention_dropout_only_matters_without_flash(self):
        spec = gpt3_175b()
        flash = TrainingConfig(
            sequence_length=4096, global_batch_size=8, attention_dropout=0.1
        )
        plain = TrainingConfig(
            sequence_length=4096,
            global_batch_size=8,
            attention_dropout=0.1,
            flash_attention=False,
        )
        core_flash = next(
            u for u in units_for_layer(LayerKind.ATTENTION, spec, flash, 8)
            if u.name == "attn.core"
        )
        core_plain = next(
            u for u in units_for_layer(LayerKind.ATTENTION, spec, plain, 8)
            if u.name == "attn.core"
        )
        assert core_plain.internal_saved_elements > 100 * core_flash.internal_saved_elements

    def test_invalid_probability_rejected(self):
        from repro.config import ConfigError

        with pytest.raises(ConfigError):
            TrainingConfig(sequence_length=8, global_batch_size=1, hidden_dropout=1.0)
