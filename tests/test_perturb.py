"""Tests for repro.pipeline.perturb — the perturbation lowering.

The contract under test: a PerturbationSpec lowers onto a schedule as a
pure duration/hop transform (DAG untouched), identity specs return the
schedule object itself, the jitter draw depends only on (seed, task key),
and every knob that moves a simulated number also moves the schedule
digest (cache soundness).
"""

import pytest

from repro.pipeline.perturb import (
    LinkDegradation,
    PerturbationSpec,
    TransientStall,
    jitter_multiplier,
    perturb_schedule,
)
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import schedule_digest, simulate
from repro.pipeline.tasks import StageCosts, TaskKey, TaskKind


def _schedule(p=3, n=4, hop=0.25):
    costs = [
        StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
        for _ in range(p)
    ]
    return one_f_one_b_schedule(costs, n, hop_time=hop)


class TestSpecConstruction:
    def test_build_from_mapping_sorts_pairs(self):
        spec = PerturbationSpec.build({2: 1.5, 0: 2.0})
        assert spec.device_factors == ((0, 2.0), (2, 1.5))

    def test_build_from_sequence_is_dense(self):
        spec = PerturbationSpec.build([1.0, 1.25, 1.5])
        assert spec.device_factors == ((0, 1.0), (1, 1.25), (2, 1.5))

    def test_factor_for_defaults_to_nominal(self):
        spec = PerturbationSpec.build({1: 1.5})
        assert spec.factor_for(1) == 1.5
        assert spec.factor_for(0) == 1.0
        assert spec.factor_for(99) == 1.0

    def test_with_device_factor_replaces(self):
        spec = PerturbationSpec.build({1: 1.5}).with_device_factor(1, 2.0)
        assert spec.factor_for(1) == 2.0
        assert spec.with_device_factor(0, 3.0).factor_for(0) == 3.0

    def test_reseeded_shifts_seed_only(self):
        spec = PerturbationSpec.build({0: 1.5}, jitter_sigma=0.1, seed=7)
        assert spec.reseeded(0) is spec
        shifted = spec.reseeded(3)
        assert shifted.seed == 10
        assert shifted.device_factors == spec.device_factors

    def test_specs_are_hashable(self):
        a = PerturbationSpec.build({0: 1.5}, stalls=[TransientStall(0, 1.0)])
        b = PerturbationSpec.build({0: 1.5}, stalls=[TransientStall(0, 1.0)])
        assert hash(a) == hash(b) and a == b

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: PerturbationSpec.build({0: 0.0}),
            lambda: PerturbationSpec.build({0: -1.0}),
            lambda: PerturbationSpec.build(jitter_sigma=-0.1),
            lambda: TransientStall(0, delay=-1.0),
            lambda: TransientStall(0, delay=1.0, length=0),
            lambda: TransientStall(0, delay=1.0, first_task=-1),
            lambda: LinkDegradation(0, 1, factor=-0.5),
            lambda: LinkDegradation(0, 1, added_latency=-1e-9),
        ],
    )
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_content_digest_separates_specs(self):
        specs = [
            PerturbationSpec.build(),
            PerturbationSpec.build({0: 1.5}),
            PerturbationSpec.build({0: 1.5}, jitter_sigma=0.1),
            PerturbationSpec.build({0: 1.5}, jitter_sigma=0.1, seed=1),
            PerturbationSpec.build(stalls=[TransientStall(0, 1.0)]),
            PerturbationSpec.build(links=[LinkDegradation(0, 1, 2.0)]),
        ]
        digests = {spec.content_digest() for spec in specs}
        assert len(digests) == len(specs)


class TestIdentity:
    def test_empty_spec_returns_same_object(self):
        schedule = _schedule()
        assert perturb_schedule(schedule, PerturbationSpec()) is schedule

    def test_provably_inert_knobs_are_identity(self):
        spec = PerturbationSpec.build(
            {0: 1.0, 2: 1.0},
            stalls=[TransientStall(1, 0.0, length=3)],
            links=[LinkDegradation(0, 1, factor=1.0, added_latency=0.0)],
        )
        assert spec.is_identity()
        schedule = _schedule()
        assert perturb_schedule(schedule, spec) is schedule

    def test_any_active_knob_is_not_identity(self):
        assert not PerturbationSpec.build({0: 1.01}).is_identity()
        assert not PerturbationSpec.build(jitter_sigma=0.01).is_identity()
        assert not PerturbationSpec.build(
            stalls=[TransientStall(0, 0.5)]
        ).is_identity()
        assert not PerturbationSpec.build(
            links=[LinkDegradation(0, 1, added_latency=0.1)]
        ).is_identity()


class TestDeviceFactors:
    def test_only_targeted_device_scales(self):
        schedule = _schedule()
        perturbed = perturb_schedule(schedule, PerturbationSpec.build({1: 1.5}))
        for device, (old, new) in enumerate(
            zip(schedule.device_tasks, perturbed.device_tasks)
        ):
            scale = 1.5 if device == 1 else 1.0
            for a, b in zip(old, new):
                assert b.duration == a.duration * scale

    def test_untouched_tasks_are_reused(self):
        # The DAG is shared: tasks whose duration is unchanged stay the
        # same objects, so keys/deps/bytes provably cannot drift.
        schedule = _schedule()
        perturbed = perturb_schedule(schedule, PerturbationSpec.build({1: 1.5}))
        assert perturbed.device_tasks[0] == schedule.device_tasks[0]
        assert all(
            b is a
            for a, b in zip(schedule.device_tasks[0], perturbed.device_tasks[0])
        )

    def test_dag_structure_untouched(self):
        schedule = _schedule()
        spec = PerturbationSpec.build(
            {0: 2.0}, jitter_sigma=0.3, seed=9,
            stalls=[TransientStall(1, 0.7, first_task=2, length=2)],
        )
        perturbed = perturb_schedule(schedule, spec)
        for old, new in zip(schedule.device_tasks, perturbed.device_tasks):
            for a, b in zip(old, new):
                assert b.key == a.key
                assert b.device == a.device
                assert b.deps == a.deps
                assert b.activation_bytes == a.activation_bytes


class TestJitter:
    KEY = TaskKey(0, 1, 2, TaskKind.FORWARD)

    def test_zero_sigma_is_exactly_one(self):
        assert jitter_multiplier(0, self.KEY, 0.0) == 1.0

    def test_deterministic_per_key_and_seed(self):
        a = jitter_multiplier(3, self.KEY, 0.2)
        assert jitter_multiplier(3, self.KEY, 0.2) == a
        assert jitter_multiplier(4, self.KEY, 0.2) != a
        other = TaskKey(0, 1, 3, TaskKind.FORWARD)
        assert jitter_multiplier(3, other, 0.2) != a

    def test_multiplier_is_positive(self):
        for seed in range(30):
            assert jitter_multiplier(seed, self.KEY, 0.5) > 0.0

    def test_order_independence(self):
        # A task's jittered duration is unaffected by perturbing others:
        # jitter is keyed off (seed, task key), never iteration state.
        schedule = _schedule()
        alone = perturb_schedule(
            schedule, PerturbationSpec.build(jitter_sigma=0.2, seed=1)
        )
        with_more = perturb_schedule(
            schedule,
            PerturbationSpec.build(
                {2: 1.0},  # extra (inert) entries must not shift draws
                jitter_sigma=0.2,
                seed=1,
                links=[LinkDegradation(0, 1, added_latency=0.1)],
            ),
        )
        for old, new in zip(alone.device_tasks, with_more.device_tasks):
            for a, b in zip(old, new):
                assert b.duration == a.duration


class TestStalls:
    def test_delay_lands_on_the_window(self):
        schedule = _schedule()
        spec = PerturbationSpec.build(
            stalls=[TransientStall(1, 0.5, first_task=1, length=2)]
        )
        perturbed = perturb_schedule(schedule, spec)
        for position, (a, b) in enumerate(
            zip(schedule.device_tasks[1], perturbed.device_tasks[1])
        ):
            extra = 0.5 if position in (1, 2) else 0.0
            assert b.duration == a.duration + extra

    def test_overlapping_stalls_sum(self):
        schedule = _schedule()
        spec = PerturbationSpec.build(
            stalls=[TransientStall(0, 0.5), TransientStall(0, 0.25)]
        )
        perturbed = perturb_schedule(schedule, spec)
        assert perturbed.device_tasks[0][0].duration == (
            schedule.device_tasks[0][0].duration + 0.75
        )

    def test_window_beyond_task_list_is_inert(self):
        schedule = _schedule(p=2, n=2)
        spec = PerturbationSpec.build(
            stalls=[TransientStall(0, 1.0, first_task=100)]
        )
        perturbed = perturb_schedule(schedule, spec)
        assert [t.duration for t in perturbed.device_tasks[0]] == [
            t.duration for t in schedule.device_tasks[0]
        ]

    def test_out_of_range_device_rejected(self):
        schedule = _schedule(p=2)
        spec = PerturbationSpec.build(stalls=[TransientStall(5, 1.0)])
        with pytest.raises(ValueError, match="targets device 5"):
            perturb_schedule(schedule, spec)


class TestLinkDegradation:
    def test_hop_override_applies_to_the_directed_link(self):
        schedule = _schedule(hop=0.2)
        spec = PerturbationSpec.build(
            links=[LinkDegradation(0, 1, factor=3.0, added_latency=0.05)]
        )
        perturbed = perturb_schedule(schedule, spec)
        assert perturbed.hop_for(0, 1) == 0.2 * 3.0 + 0.05
        # The reverse direction and other links stay nominal.
        assert perturbed.hop_for(1, 0) == 0.2
        assert perturbed.hop_for(1, 2) == 0.2

    def test_degradations_compound_on_existing_overrides(self):
        schedule = _schedule(hop=0.2)
        once = perturb_schedule(
            schedule,
            PerturbationSpec.build(links=[LinkDegradation(0, 1, factor=2.0)]),
        )
        twice = perturb_schedule(
            once,
            PerturbationSpec.build(links=[LinkDegradation(0, 1, factor=3.0)]),
        )
        assert twice.hop_for(0, 1) == 0.2 * 2.0 * 3.0

    def test_link_degradation_slows_the_simulation(self):
        schedule = _schedule(hop=0.2)
        spec = PerturbationSpec.build(
            links=[LinkDegradation(0, 1, added_latency=5.0)]
        )
        base = simulate(schedule, cache=False).iteration_time
        degraded = simulate(perturb_schedule(schedule, spec), cache=False)
        assert degraded.iteration_time > base

    def test_link_only_perturbation_moves_digest(self):
        # Regression for the cache-soundness fix: durations were always
        # digest-covered, per-link hop overrides were not — a link-only
        # perturbation used to alias the nominal cache entry.
        schedule = _schedule()
        spec = PerturbationSpec.build(links=[LinkDegradation(0, 1, 2.0)])
        perturbed = perturb_schedule(schedule, spec)
        assert [t.duration for d in perturbed.device_tasks for t in d] == [
            t.duration for d in schedule.device_tasks for t in d
        ]
        assert schedule_digest(perturbed) != schedule_digest(schedule)


class TestDigestCoverage:
    @pytest.mark.parametrize(
        "spec",
        [
            PerturbationSpec.build({0: 1.5}),
            PerturbationSpec.build(jitter_sigma=0.2, seed=11),
            PerturbationSpec.build(stalls=[TransientStall(1, 0.4)]),
            PerturbationSpec.build(links=[LinkDegradation(1, 2, 4.0)]),
        ],
    )
    def test_every_active_knob_moves_the_digest(self, spec):
        schedule = _schedule()
        assert schedule_digest(perturb_schedule(schedule, spec)) != (
            schedule_digest(schedule)
        )

    def test_same_spec_twice_is_digest_identical(self):
        schedule = _schedule()
        spec = PerturbationSpec.build(
            {0: 1.5}, jitter_sigma=0.2, seed=3,
            stalls=[TransientStall(1, 0.4)],
            links=[LinkDegradation(0, 1, 2.0)],
        )
        assert schedule_digest(perturb_schedule(schedule, spec)) == (
            schedule_digest(perturb_schedule(schedule, spec))
        )
