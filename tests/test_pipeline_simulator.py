"""Tests for repro.pipeline.simulator — timing and memory correctness.

Every test runs against both engines (the compiled ready-queue engine and
the reference polling oracle) with caching disabled, so the semantic
assertions pin both implementations independently. ``_simulate``
additionally cross-checks the two engines bit-for-bit on every schedule a
test touches, so each closed-form expectation below is simultaneously a
cross-engine comparison — a float can't drift in one engine without the
other vouching for it.
"""

import pytest

from repro.pipeline.schedules import gpipe_schedule, one_f_one_b_schedule
from repro.pipeline.simulator import SimulationError, simulate
from repro.pipeline.tasks import Schedule, StageCosts, Task, TaskKey, TaskKind


@pytest.fixture(params=["compiled", "reference"])
def engine(request):
    return request.param


def _costs(p, f=1.0, b=2.0, act=1.0, static=0.0, buffer=0.0):
    return [
        StageCosts(forward=f, backward=b, activation_bytes=act,
                   static_bytes=static, buffer_bytes=buffer)
        for _ in range(p)
    ]


def _simulate(schedule, engine):
    results = {
        name: simulate(schedule, engine=name, cache=False)
        for name in ("compiled", "reference")
    }
    compiled, reference = results["compiled"], results["reference"]
    assert compiled.iteration_time == reference.iteration_time
    assert compiled.start_times == reference.start_times
    assert compiled.end_times == reference.end_times
    assert compiled.device_busy_time == reference.device_busy_time
    assert compiled.device_peak_bytes == reference.device_peak_bytes
    assert (
        compiled.device_micro_batch_passes
        == reference.device_micro_batch_passes
    )
    return results[engine]


class TestMakespan:
    @pytest.mark.parametrize("p,n", [(2, 2), (3, 6), (4, 8), (8, 16)])
    def test_1f1b_matches_closed_form(self, p, n, engine):
        """Without comm, the 1F1B makespan is (p-1)(F+B) + n(F+B)."""
        f, b = 1.0, 2.0
        result = _simulate(one_f_one_b_schedule(_costs(p, f, b), n), engine)
        assert result.iteration_time == pytest.approx((p - 1 + n) * (f + b))

    @pytest.mark.parametrize("p,n", [(2, 4), (3, 6), (4, 8)])
    def test_gpipe_matches_closed_form(self, p, n, engine):
        f, b = 1.0, 2.0
        result = _simulate(gpipe_schedule(_costs(p, f, b), n), engine)
        assert result.iteration_time == pytest.approx((p - 1 + n) * (f + b))

    def test_hop_time_stretches_warmup(self, engine):
        without = _simulate(one_f_one_b_schedule(_costs(4), 8, hop_time=0.0), engine)
        with_hop = _simulate(one_f_one_b_schedule(_costs(4), 8, hop_time=0.1), engine)
        assert with_hop.iteration_time > without.iteration_time

    def test_single_stage_has_no_bubbles(self, engine):
        result = _simulate(one_f_one_b_schedule(_costs(1), 5), engine)
        assert result.bubble_ratio == pytest.approx(0.0)
        assert result.iteration_time == pytest.approx(5 * 3.0)

    def test_bubble_ratio_closed_form(self, engine):
        # bubble fraction of 1F1B = (p-1)/(n+p-1) when F+B is uniform.
        p, n = 4, 8
        result = _simulate(one_f_one_b_schedule(_costs(p), n), engine)
        assert result.bubble_ratio == pytest.approx((p - 1) / (n + p - 1))

    def test_busy_time_is_work(self, engine):
        p, n = 3, 5
        result = _simulate(one_f_one_b_schedule(_costs(p), n), engine)
        for busy in result.device_busy_time:
            assert busy == pytest.approx(n * 3.0)


class TestMemoryTracking:
    def test_1f1b_peaks_are_p_minus_s(self, engine):
        # Stage s pins at most min(n, p - s) activations of 1 byte each.
        p, n = 4, 8
        result = _simulate(one_f_one_b_schedule(_costs(p), n), engine)
        expected = [float(min(n, p - s)) for s in range(p)]
        assert result.device_peak_bytes == pytest.approx(expected)

    def test_1f1b_peak_capped_by_n(self, engine):
        p, n = 4, 2
        result = _simulate(one_f_one_b_schedule(_costs(p), n), engine)
        assert max(result.device_peak_bytes) <= n

    def test_gpipe_pins_everything(self, engine):
        p, n = 3, 6
        result = _simulate(gpipe_schedule(_costs(p), n), engine)
        assert result.device_peak_bytes == pytest.approx([float(n)] * p)

    def test_static_and_buffer_added(self, engine):
        p, n = 2, 2
        costs = _costs(p, static=10.0, buffer=0.5)
        result = _simulate(one_f_one_b_schedule(costs, n), engine)
        assert result.device_peak_bytes[0] == pytest.approx(10.0 + 0.5 + 2.0)

    def test_oom_devices(self, engine):
        result = _simulate(one_f_one_b_schedule(_costs(4), 8), engine)
        assert result.oom_devices(3.5) == [0]
        assert result.oom_devices(0.5) == [0, 1, 2, 3]
        assert result.oom_devices(100.0) == []


class TestUsefulWork:
    def test_passes_count_forward_and_backward(self, engine):
        p, n = 3, 5
        result = _simulate(one_f_one_b_schedule(_costs(p), n), engine)
        # Each device runs n forwards and n backwards of weight 1.
        assert result.device_micro_batch_passes == [2 * n] * p
        assert result.micro_batch_passes == 2 * n * p


class TestErrorHandling:
    def test_deadlock_detected(self, engine):
        # Two tasks that wait on each other across devices.
        a_key = TaskKey(0, 0, 0, TaskKind.FORWARD)
        b_key = TaskKey(0, 1, 0, TaskKind.FORWARD)
        a = Task(key=a_key, device=0, duration=1.0, deps=(b_key,))
        b = Task(key=b_key, device=1, duration=1.0, deps=(a_key,))
        schedule = Schedule(name="dead", num_devices=2, device_tasks=[[a], [b]])
        with pytest.raises(SimulationError, match="deadlock"):
            _simulate(schedule, engine)

    def test_missing_dependency_detected(self, engine):
        ghost = TaskKey(0, 5, 5, TaskKind.FORWARD)
        task = Task(
            key=TaskKey(0, 0, 0, TaskKind.FORWARD),
            device=0,
            duration=1.0,
            deps=(ghost,),
        )
        schedule = Schedule(name="bad", num_devices=1, device_tasks=[[task]])
        with pytest.raises(SimulationError, match="missing"):
            _simulate(schedule, engine)

    def test_empty_schedule(self, engine):
        schedule = Schedule(name="empty", num_devices=1, device_tasks=[[]])
        result = _simulate(schedule, engine)
        assert result.iteration_time == 0.0


class TestDependencyOrdering:
    def test_forward_waves_respect_stage_order(self, engine):
        p, n = 4, 4
        result = _simulate(one_f_one_b_schedule(_costs(p), n, hop_time=0.25), engine)
        for m in range(n):
            for s in range(1, p):
                upstream = result.end_times[TaskKey(0, s - 1, m, TaskKind.FORWARD)]
                start = result.start_times[TaskKey(0, s, m, TaskKind.FORWARD)]
                assert start >= upstream + 0.25 - 1e-12

    def test_backward_waves_respect_reverse_order(self, engine):
        p, n = 4, 4
        result = _simulate(one_f_one_b_schedule(_costs(p), n), engine)
        for m in range(n):
            for s in range(p - 1):
                downstream = result.end_times[TaskKey(0, s + 1, m, TaskKind.BACKWARD)]
                start = result.start_times[TaskKey(0, s, m, TaskKind.BACKWARD)]
                assert start >= downstream - 1e-12

    def test_no_device_overlap(self, engine):
        result = _simulate(one_f_one_b_schedule(_costs(4), 8), engine)
        for device, tasks in enumerate(result.schedule.device_tasks):
            intervals = sorted(
                (result.start_times[t.key], result.end_times[t.key]) for t in tasks
            )
            for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-12
