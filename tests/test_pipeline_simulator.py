"""Tests for repro.pipeline.simulator — timing and memory correctness."""

import pytest

from repro.pipeline.schedules import gpipe_schedule, one_f_one_b_schedule
from repro.pipeline.simulator import SimulationError, simulate
from repro.pipeline.tasks import Schedule, StageCosts, Task, TaskKey, TaskKind


def _costs(p, f=1.0, b=2.0, act=1.0, static=0.0, buffer=0.0):
    return [
        StageCosts(forward=f, backward=b, activation_bytes=act,
                   static_bytes=static, buffer_bytes=buffer)
        for _ in range(p)
    ]


class TestMakespan:
    @pytest.mark.parametrize("p,n", [(2, 2), (3, 6), (4, 8), (8, 16)])
    def test_1f1b_matches_closed_form(self, p, n):
        """Without comm, the 1F1B makespan is (p-1)(F+B) + n(F+B)."""
        f, b = 1.0, 2.0
        result = simulate(one_f_one_b_schedule(_costs(p, f, b), n))
        assert result.iteration_time == pytest.approx((p - 1 + n) * (f + b))

    @pytest.mark.parametrize("p,n", [(2, 4), (3, 6), (4, 8)])
    def test_gpipe_matches_closed_form(self, p, n):
        f, b = 1.0, 2.0
        result = simulate(gpipe_schedule(_costs(p, f, b), n))
        assert result.iteration_time == pytest.approx((p - 1 + n) * (f + b))

    def test_hop_time_stretches_warmup(self):
        without = simulate(one_f_one_b_schedule(_costs(4), 8, hop_time=0.0))
        with_hop = simulate(one_f_one_b_schedule(_costs(4), 8, hop_time=0.1))
        assert with_hop.iteration_time > without.iteration_time

    def test_single_stage_has_no_bubbles(self):
        result = simulate(one_f_one_b_schedule(_costs(1), 5))
        assert result.bubble_ratio == pytest.approx(0.0)
        assert result.iteration_time == pytest.approx(5 * 3.0)

    def test_bubble_ratio_closed_form(self):
        # bubble fraction of 1F1B = (p-1)/(n+p-1) when F+B is uniform.
        p, n = 4, 8
        result = simulate(one_f_one_b_schedule(_costs(p), n))
        assert result.bubble_ratio == pytest.approx((p - 1) / (n + p - 1))

    def test_busy_time_is_work(self):
        p, n = 3, 5
        result = simulate(one_f_one_b_schedule(_costs(p), n))
        for busy in result.device_busy_time:
            assert busy == pytest.approx(n * 3.0)


class TestMemoryTracking:
    def test_1f1b_peaks_are_p_minus_s(self):
        p, n = 4, 8
        result = simulate(one_f_one_b_schedule(_costs(p), n))
        assert result.device_peak_bytes == pytest.approx([4.0, 3.0, 2.0, 1.0])

    def test_1f1b_peak_capped_by_n(self):
        p, n = 4, 2
        result = simulate(one_f_one_b_schedule(_costs(p), n))
        assert max(result.device_peak_bytes) <= n

    def test_gpipe_pins_everything(self):
        p, n = 3, 6
        result = simulate(gpipe_schedule(_costs(p), n))
        assert result.device_peak_bytes == pytest.approx([float(n)] * p)

    def test_static_and_buffer_added(self):
        p, n = 2, 2
        costs = _costs(p, static=10.0, buffer=0.5)
        result = simulate(one_f_one_b_schedule(costs, n))
        assert result.device_peak_bytes[0] == pytest.approx(10.0 + 0.5 + 2.0)

    def test_oom_devices(self):
        result = simulate(one_f_one_b_schedule(_costs(4), 8))
        assert result.oom_devices(3.5) == [0]
        assert result.oom_devices(0.5) == [0, 1, 2, 3]
        assert result.oom_devices(100.0) == []


class TestErrorHandling:
    def test_deadlock_detected(self):
        # Two tasks that wait on each other across devices.
        a_key = TaskKey(0, 0, 0, TaskKind.FORWARD)
        b_key = TaskKey(0, 1, 0, TaskKind.FORWARD)
        a = Task(key=a_key, device=0, duration=1.0, deps=(b_key,))
        b = Task(key=b_key, device=1, duration=1.0, deps=(a_key,))
        schedule = Schedule(name="dead", num_devices=2, device_tasks=[[a], [b]])
        with pytest.raises(SimulationError, match="deadlock"):
            simulate(schedule)

    def test_missing_dependency_detected(self):
        ghost = TaskKey(0, 5, 5, TaskKind.FORWARD)
        task = Task(
            key=TaskKey(0, 0, 0, TaskKind.FORWARD),
            device=0,
            duration=1.0,
            deps=(ghost,),
        )
        schedule = Schedule(name="bad", num_devices=1, device_tasks=[[task]])
        with pytest.raises(SimulationError, match="missing"):
            simulate(schedule)

    def test_empty_schedule(self):
        schedule = Schedule(name="empty", num_devices=1, device_tasks=[[]])
        result = simulate(schedule)
        assert result.iteration_time == 0.0


class TestDependencyOrdering:
    def test_forward_waves_respect_stage_order(self):
        p, n = 4, 4
        result = simulate(one_f_one_b_schedule(_costs(p), n, hop_time=0.25))
        for m in range(n):
            for s in range(1, p):
                upstream = result.end_times[TaskKey(0, s - 1, m, TaskKind.FORWARD)]
                start = result.start_times[TaskKey(0, s, m, TaskKind.FORWARD)]
                assert start >= upstream + 0.25 - 1e-12

    def test_backward_waves_respect_reverse_order(self):
        p, n = 4, 4
        result = simulate(one_f_one_b_schedule(_costs(p), n))
        for m in range(n):
            for s in range(p - 1):
                downstream = result.end_times[TaskKey(0, s + 1, m, TaskKind.BACKWARD)]
                start = result.start_times[TaskKey(0, s, m, TaskKind.BACKWARD)]
                assert start >= downstream - 1e-12

    def test_no_device_overlap(self):
        result = simulate(one_f_one_b_schedule(_costs(4), 8))
        for device, tasks in enumerate(result.schedule.device_tasks):
            intervals = sorted(
                (result.start_times[t.key], result.end_times[t.key]) for t in tasks
            )
            for (s1, e1), (s2, _) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-12
