"""Tests for the SVG report subsystem.

No rasterizer is available offline, so geometry is verified structurally:
well-formed XML, every element inside the canvas, mark specs honoured
(2px lines, ringed markers, rounded bar caps), legends present for
multi-series charts, OOM markers where bars are missing.
"""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments import run_experiment
from repro.report.charts import (
    ChartSpec,
    Series,
    grouped_bar_chart,
    heat_map,
    line_chart,
)
from repro.report.render import render_experiment_svg, save_experiment_svgs
from repro.report.svg import SERIES, SvgCanvas, format_tick, nice_ticks

NS = "{http://www.w3.org/2000/svg}"


def _root(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def _all(svg: str, tag: str):
    return _root(svg).iter(f"{NS}{tag}")


class TestSvgBuilder:
    def test_document_is_well_formed(self):
        canvas = SvgCanvas(200, 100)
        canvas.text(10, 20, "hello <&> world")
        root = _root(canvas.to_string())
        assert root.attrib["width"] == "200"
        text = next(root.iter(f"{NS}text"))
        assert text.text == "hello <&> world"

    def test_rounded_top_bar_is_a_path(self):
        canvas = SvgCanvas(100, 100)
        canvas.rect(10, 10, 20, 50, fill="#000", rx_top=4)
        assert any(True for _ in _all(canvas.to_string(), "path"))

    def test_zero_size_rect_skipped(self):
        canvas = SvgCanvas(100, 100)
        canvas.rect(10, 10, 0, 50, fill="#000")
        assert sum(1 for _ in _all(canvas.to_string(), "rect")) == 1  # surface only

    def test_circle_carries_surface_ring(self):
        canvas = SvgCanvas(100, 100)
        canvas.circle(50, 50, 4, fill="#2a78d6")
        circle = next(_all(canvas.to_string(), "circle"))
        assert circle.attrib["stroke-width"] == "2"

    @pytest.mark.parametrize(
        "low,high", [(0, 100), (0, 7), (10, 11), (0, 0.5), (0, 123456)]
    )
    def test_nice_ticks_cover_range(self, low, high):
        ticks = nice_ticks(low, high)
        assert len(ticks) >= 2
        assert ticks == sorted(ticks)
        assert ticks[0] <= max(low, 0) + (high - low)
        assert ticks[-1] <= high + (ticks[1] - ticks[0])

    def test_format_tick(self):
        assert format_tick(2000.0) == "2,000"
        assert format_tick(0.5) == "0.5"


def _bounds_ok(svg: str) -> bool:
    root = _root(svg)
    width = float(root.attrib["width"])
    height = float(root.attrib["height"])
    for text in root.iter(f"{NS}text"):
        x, y = float(text.attrib["x"]), float(text.attrib["y"])
        if not (0 <= x <= width and 0 <= y <= height):
            return False
    for circle in root.iter(f"{NS}circle"):
        if not (0 <= float(circle.attrib["cx"]) <= width):
            return False
        if not (-1 <= float(circle.attrib["cy"]) <= height + 1):
            return False
    return True


class TestCharts:
    @pytest.fixture
    def line_svg(self):
        spec = ChartSpec(
            title="test lines",
            x_labels=["0", "1", "2", "3"],
            y_title="GiB",
            reference_line=(80.0, "limit"),
        )
        series = [
            Series("a", [10.0, 20.0, 30.0, 40.0]),
            Series("b", [90.0, None, 70.0, 60.0]),
        ]
        return line_chart(spec, series)

    def test_line_chart_structure(self, line_svg):
        polylines = list(_all(line_svg, "polyline"))
        # two series (series b splits around the gap) + dashed reference
        assert len(polylines) >= 3
        data_lines = [p for p in polylines if p.attrib["stroke"] in SERIES]
        assert all(p.attrib["stroke-width"] == "2" for p in data_lines)

    def test_line_chart_end_markers(self, line_svg):
        circles = list(_all(line_svg, "circle"))
        assert len(circles) == 2  # one end marker per series

    def test_line_chart_direct_labels(self, line_svg):
        texts = [t.text for t in _all(line_svg, "text")]
        assert "a" in texts and "b" in texts

    def test_line_chart_within_bounds(self, line_svg):
        assert _bounds_ok(line_svg)

    def test_missing_values_break_lines(self):
        spec = ChartSpec(title="gap", x_labels=["0", "1", "2"])
        svg = line_chart(spec, [Series("only", [1.0, None, 3.0])])
        # Two one-point segments produce no polyline (needs >= 2 points),
        # so only the title/marker remain — no crash, no bogus bridge.
        data_polylines = [
            p for p in _all(svg, "polyline") if p.attrib["stroke"] in SERIES
        ]
        assert data_polylines == []

    def test_many_series_use_legend_not_direct_labels(self):
        spec = ChartSpec(title="busy", x_labels=["0", "1"])
        series = [Series(f"s{i}", [float(i), float(i + 1)]) for i in range(6)]
        svg = line_chart(spec, series)
        texts = [t.text for t in _all(svg, "text")]
        assert all(f"s{i}" in texts for i in range(6))  # legend rows

    @pytest.fixture
    def bar_svg(self):
        spec = ChartSpec(title="bars", x_labels=["4096", "8192"], y_title="s")
        series = [
            Series("DAPPLE", [60.0, 80.0]),
            Series("AdaPipe", [50.0, None]),
        ]
        return grouped_bar_chart(spec, series)

    def test_bar_chart_draws_bars_and_oom(self, bar_svg):
        paths = list(_all(bar_svg, "path"))  # rounded-top bars + legend swatches
        assert len(paths) == 3 + 2  # 4 bar slots (one OOM) + 2 legend keys
        texts = [t.text for t in _all(bar_svg, "text")]
        assert "OOM" in texts

    def test_bar_chart_legend(self, bar_svg):
        texts = [t.text for t in _all(bar_svg, "text")]
        assert "DAPPLE" in texts and "AdaPipe" in texts

    def test_bar_chart_within_bounds(self, bar_svg):
        assert _bounds_ok(bar_svg)


class TestExperimentRendering:
    @pytest.fixture(scope="class")
    def figure1(self):
        return run_experiment("figure1", fast=True)

    def test_figure1_renders(self, figure1):
        svg = render_experiment_svg("figure1", figure1)
        assert svg is not None
        assert _bounds_ok(svg)
        texts = [t.text for t in _all(svg, "text")]
        assert any("80 GiB" in (t or "") for t in texts)

    def test_figure2_is_text_only(self):
        result = run_experiment("figure2", fast=True)
        assert render_experiment_svg("figure2", result) is None

    def test_save_experiment_svgs(self, figure1, tmp_path):
        written = save_experiment_svgs({"figure1": figure1}, str(tmp_path))
        assert len(written) == 1
        content = (tmp_path / "figure1.svg").read_text()
        assert content.startswith("<svg")

    def test_figure10_renders(self):
        result = run_experiment("figure10", fast=True)
        svg = render_experiment_svg("figure10", result)
        assert svg is not None and _bounds_ok(svg)

    def test_table4_renders(self):
        result = run_experiment("table4", fast=True)
        svg = render_experiment_svg("table4", result)
        assert svg is not None and _bounds_ok(svg)

    def test_robustness_renders_criticality_heat_map(self):
        result = run_experiment("robustness", fast=True)
        svg = render_experiment_svg("robustness", result)
        assert svg is not None and _bounds_ok(svg)
        texts = [t.text or "" for t in _all(svg, "text")]
        assert any("criticality" in t for t in texts)


class TestHeatMap:
    @pytest.fixture
    def heat_svg(self):
        spec = ChartSpec(
            title="test heat",
            subtitle="per-column ramp",
            x_labels=["dev0", "dev1", "dev2"],
        )
        values = [[0.1, 0.9, None], [0.5, 0.2, 0.7]]
        return heat_map(spec, ["(1,2,2)", "(1,4,1)"], values, width=480)

    def test_document_well_formed_and_in_bounds(self, heat_svg):
        assert heat_svg.startswith("<svg")
        assert _bounds_ok(heat_svg)

    def test_every_cell_is_labelled(self, heat_svg):
        texts = [t.text for t in _all(heat_svg, "text")]
        for value in ("0.100", "0.900", "0.500", "0.200", "0.700"):
            assert value in texts

    def test_missing_cells_render_a_dash(self, heat_svg):
        assert "–" in [t.text for t in _all(heat_svg, "text")]

    def test_extremes_get_the_ramp_endpoints(self, heat_svg):
        # Per-column normalisation: each column's max cell takes the full
        # series hue, its min cell the near-surface end.
        fills = {r.attrib["fill"] for r in _all(heat_svg, "rect")}
        assert SERIES[0] in fills
        assert "#f3f2ef" in fills


class TestHtmlReport:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            "figure1": run_experiment("figure1", fast=True),
            "figure2": run_experiment("figure2", fast=True),
        }

    def test_report_contains_charts_and_tables(self, results):
        from repro.report.html import build_html_report

        document = build_html_report(results)
        assert document.startswith("<!DOCTYPE html>")
        assert document.count("<svg") == 1  # figure2 is text-only
        assert document.count("<table>") == 2
        assert 'id="figure1"' in document and 'id="figure2"' in document

    def test_report_escapes_content(self, results):
        from repro.experiments.common import ExperimentResult
        from repro.report.html import build_html_report

        tricky = ExperimentResult(
            name="figure2", title="<script>alert(1)</script>",
            headers=["a"], rows=[["<b>"]],
        )
        document = build_html_report({"figure2": tricky})
        assert "<script>alert" not in document
        assert "&lt;script&gt;" in document

    def test_write_html_report(self, results, tmp_path):
        from repro.report.html import write_html_report

        path = write_html_report(results, str(tmp_path / "out" / "report.html"))
        assert (tmp_path / "out" / "report.html").read_text().startswith("<!DOCTYPE")
        assert path.endswith("report.html")
