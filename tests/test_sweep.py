"""Tests for the parallel, pruned, cache-reusing strategy sweep."""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import StageEvalCache
from repro.core.search import (
    PlannerContext,
    enumerate_parallel_strategies,
    plan_adapipe,
    plan_even_partitioning,
)
from repro.core.serialize import plan_signature
from repro.core.sweep import SweepConfig, run_sweep, strategy_lower_bound
from repro.hardware.cluster import cluster_a


LIMIT = 8 * 1024**2

SERIAL = SweepConfig(workers=1, prune=False, share_cache=False)


@pytest.fixture
def sweep_args(tiny_spec, tiny_train):
    """Tiny-GPT sweep over cluster A's one-node 8-device strategy space."""
    return dict(
        cluster=cluster_a(1),
        spec=tiny_spec,
        train=tiny_train,
        num_devices=8,
        memory_limit_bytes=LIMIT,
    )


class TestEquivalence:
    """Pruned/parallel sweeps must select the exact serial best plan."""

    def test_pruned_matches_serial(self, sweep_args):
        serial = run_sweep(config=SERIAL, **sweep_args)
        pruned = run_sweep(
            config=SweepConfig(workers=1, prune=True, share_cache=True),
            **sweep_args,
        )
        assert serial.best is not None
        assert plan_signature(pruned.best) == plan_signature(serial.best)

    def test_parallel_pruned_matches_serial(self, sweep_args):
        serial = run_sweep(config=SERIAL, **sweep_args)
        parallel = run_sweep(
            config=SweepConfig(workers=2, prune=True, share_cache=True),
            **sweep_args,
        )
        assert parallel.stats.workers == 2
        assert plan_signature(parallel.best) == plan_signature(serial.best)

    def test_parallel_unpruned_returns_identical_plan_list(self, sweep_args):
        serial = run_sweep(config=SERIAL, **sweep_args)
        parallel = run_sweep(
            config=SweepConfig(workers=2, prune=False, share_cache=True),
            **sweep_args,
        )
        assert len(parallel.plans) == len(serial.plans)
        for a, b in zip(serial.plans, parallel.plans):
            assert plan_signature(a) == plan_signature(b)

    def test_search_best_strategy_delegates_exhaustively(self, sweep_args):
        from repro.core.search import search_best_strategy

        best, plans = search_best_strategy(
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
            sweep_args["num_devices"],
            plan_even_partitioning,
            memory_limit_bytes=LIMIT,
        )
        reference = run_sweep(
            planner=plan_even_partitioning, config=SERIAL, **sweep_args
        )
        assert len(plans) == len(reference.plans)
        assert plan_signature(best) == plan_signature(reference.best)


class TestLowerBound:
    """strategy_lower_bound must never exceed any planner's modelled time."""

    def test_admissible_for_all_planners(self, sweep_args):
        strategies = enumerate_parallel_strategies(
            sweep_args["num_devices"],
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
        )
        assert strategies
        for parallel in strategies:
            ctx = PlannerContext(
                sweep_args["cluster"],
                sweep_args["spec"],
                sweep_args["train"],
                parallel,
                memory_limit_bytes=LIMIT,
            )
            bound = strategy_lower_bound(ctx)
            assert bound > 0
            for planner in (plan_adapipe, plan_even_partitioning):
                plan = planner(ctx)
                if plan.feasible:
                    # An infinite bound claims "provably infeasible" — a
                    # feasible plan would disprove admissibility outright.
                    assert bound <= plan.modeled_iteration_time + 1e-12

    def test_admissible_under_memory_pressure(self, gpt3):
        """Recomputation inflates backward times; the bound must stay below."""
        train = TrainingConfig(sequence_length=8192, global_batch_size=16)
        ctx = PlannerContext(
            cluster_a(8),
            gpt3,
            train,
            ParallelConfig(8, 8, 1),
            memory_limit_bytes=60 * 1024**3,
        )
        plan = plan_even_partitioning(ctx)
        assert plan.feasible
        assert strategy_lower_bound(ctx) <= plan.modeled_iteration_time


class TestPruning:
    def test_stats_account_for_every_strategy(self, sweep_args):
        result = run_sweep(
            config=SweepConfig(workers=1, prune=True), **sweep_args
        )
        stats = result.stats
        assert stats.strategies_total > 0
        assert stats.strategies_planned + stats.strategies_pruned == (
            stats.strategies_total
        )
        assert len(stats.reports) == stats.strategies_total
        assert len(result.plans) == stats.strategies_planned
        for report in stats.reports:
            if report.pruned:
                assert report.per_sample_time is None
                assert report.wall_seconds == 0.0
        assert "strategies" in stats.describe()

    def test_prune_skips_hopeless_strategies(self, sweep_args):
        """With an incumbent planted via strategy order, bad strategies are
        pruned — here just assert pruning fires on the real space, where
        deep pipelines on a tiny model cannot beat the shallow optimum."""
        pruned = run_sweep(
            config=SweepConfig(workers=1, prune=True), **sweep_args
        )
        exhaustive = run_sweep(config=SERIAL, **sweep_args)
        assert pruned.stats.strategies_planned <= (
            exhaustive.stats.strategies_planned
        )
        assert plan_signature(pruned.best) == plan_signature(exhaustive.best)

    def test_best_plan_carries_sweep_metadata(self, sweep_args):
        result = run_sweep(
            config=SweepConfig(workers=1, prune=True), **sweep_args
        )
        metadata = result.best.metadata
        assert metadata["sweep_strategies_total"] == (
            result.stats.strategies_total
        )
        assert "sweep_lower_bound" in metadata
        assert metadata["inner_dp_invocations"] > 0


class TestEvalCacheSharing:
    def test_cross_planner_reuse(self, sweep_args):
        """AdaPipe then Even Partitioning on one strategy: the second
        planner's stage evaluations all come from the shared cache."""
        cache = StageEvalCache()
        parallel = ParallelConfig(1, 2, 1)
        make_ctx = lambda: PlannerContext(  # noqa: E731
            sweep_args["cluster"],
            sweep_args["spec"],
            sweep_args["train"],
            parallel,
            memory_limit_bytes=LIMIT,
            eval_cache=cache,
        )
        plan_adapipe(make_ctx())
        hits_before = cache.hits
        cached = plan_even_partitioning(make_ctx())
        assert cache.hits > hits_before
        uncached = plan_even_partitioning(
            PlannerContext(
                sweep_args["cluster"],
                sweep_args["spec"],
                sweep_args["train"],
                parallel,
                memory_limit_bytes=LIMIT,
            )
        )
        assert plan_signature(cached) == plan_signature(uncached)

    def test_cross_pipeline_depth_reuse(self, sweep_args):
        """Same (t, d), different p: in-flight-keyed isomorphism classes
        let a deeper pipeline reuse the shallower sweep's evaluations."""
        strategies = [ParallelConfig(1, 2, 1), ParallelConfig(1, 4, 1)]
        result = run_sweep(
            strategies=strategies,
            config=SweepConfig(workers=1, prune=False, share_cache=True),
            **sweep_args,
        )
        assert result.stats.eval_cache_hits > 0
        reference = run_sweep(strategies=strategies, config=SERIAL, **sweep_args)
        for a, b in zip(result.plans, reference.plans):
            assert plan_signature(a) == plan_signature(b)

    def test_hit_rate_bookkeeping(self):
        cache = StageEvalCache()
        assert cache.hit_rate == 0.0
        assert cache.get(("k",)) is None
        cache.put(("k",), "v")
        assert cache.get(("k",)) == "v"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        assert len(cache) == 1


class TestPlannerResolution:
    def test_planner_by_registry_name(self, sweep_args):
        by_name = run_sweep(planner="Even Partitioning", config=SERIAL, **sweep_args)
        by_fn = run_sweep(
            planner=plan_even_partitioning, config=SERIAL, **sweep_args
        )
        assert plan_signature(by_name.best) == plan_signature(by_fn.best)

    def test_unpicklable_planner_falls_back_to_serial(self, sweep_args):
        result = run_sweep(
            planner=lambda ctx: plan_even_partitioning(ctx),
            config=SweepConfig(workers=2, prune=False),
            **sweep_args,
        )
        assert result.stats.workers == 1
        assert result.best is not None

    def test_worker_resolution(self):
        auto = SweepConfig(workers=0, min_parallel=4)
        assert auto.resolve_workers(2) == 1  # below min_parallel: stay serial
        assert auto.resolve_workers(0) == 1
        assert SweepConfig(workers=3).resolve_workers(10) == 3
        assert SweepConfig(workers=8).resolve_workers(2) == 2
