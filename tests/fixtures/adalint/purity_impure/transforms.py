"""Fixture: a duration transform that mutates its argument one call deep.

``lower`` looks pure; the violation lives in ``_apply_delays``, which
stores into the caller's list — exactly the in-place update the §9
soundness argument forbids (a second draw would see the first draw's
delays already folded in).
"""


def _apply_delays(durations, delays):
    for index, delay in enumerate(delays):
        durations[index] = durations[index] + delay
    return durations


def lower(durations, delays):
    return _apply_delays(durations, delays)
