"""Fixture: scalar and vector lowering disagree on op order.

The scalar side applies the factor first, then adds delays; the vector
side folds delays in *before* multiplying. Same algebra over the reals,
different float rounding — the batched/scalar bit-equivalence tests
would fail on the last ulp, and the lint gate must catch the edit
before they do.
"""


def scalar_lower(duration, factor, delay):
    duration = duration * factor
    duration = duration + delay
    return duration


def vector_lower(durations, factors, delays):
    return (durations + delays) * factors
