"""Fixture: the same transform, done purely — fresh locals only."""


def _apply_delays(durations, delays):
    lowered = list(durations)
    for index, delay in enumerate(delays):
        lowered[index] = lowered[index] + delay
    return lowered


def lower(durations, delays):
    return _apply_delays(durations, delays)
