"""Fixture: a digest that delegates hashing through two helper calls.

The planted bug: neither the digest, nor ``_schedule_parts``, nor
``_link_parts`` ever reads ``Schedule.link_hops`` — the historic PR 4
omission, now hidden two calls deep where a single-function name match
cannot see the gap is real rather than delegated.
"""

import hashlib

from .tasks import Schedule, Task


def _task_parts(task: Task):
    return (task.key.stage, task.key.micro_batch, task.duration,
            tuple((d.stage, d.micro_batch) for d in task.deps))


def _schedule_parts(schedule: Schedule):
    parts = [schedule.num_devices, schedule.hop_time]
    for device in schedule.device_tasks:
        for task in device:
            parts.append(_task_parts(task))
    return tuple(parts)


def schedule_digest(schedule: Schedule) -> str:
    return hashlib.sha256(repr(_schedule_parts(schedule)).encode()).hexdigest()
