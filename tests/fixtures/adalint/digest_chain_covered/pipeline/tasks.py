"""Trimmed task/schedule dataclasses feeding the fixture digest."""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class TaskKey:
    stage: int
    micro_batch: int


@dataclass(frozen=True)
class Task:
    key: TaskKey
    duration: float
    deps: Tuple["TaskKey", ...]


@dataclass(frozen=True)
class Schedule:
    name: str
    num_micro_batches: int
    num_devices: int
    hop_time: float
    link_hops: Tuple[Tuple[int, ...], ...]
    device_tasks: Tuple[Tuple[Task, ...], ...]
