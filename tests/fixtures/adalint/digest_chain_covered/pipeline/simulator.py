"""Fixture: full digest coverage reached only two calls deep.

``link_hops`` is read inside ``_link_parts``, called from
``_schedule_parts``, called from ``schedule_digest`` — a v1
single-function name match would falsely report every field missing;
the interprocedural read analysis must report this tree clean.
"""

import hashlib

from .tasks import Schedule, Task


def _task_parts(task: Task):
    return (task.key.stage, task.key.micro_batch, task.duration,
            tuple((d.stage, d.micro_batch) for d in task.deps))


def _link_parts(schedule: Schedule):
    return tuple(tuple(row) for row in schedule.link_hops)


def _schedule_parts(schedule: Schedule):
    parts = [schedule.num_devices, schedule.hop_time, _link_parts(schedule)]
    for device in schedule.device_tasks:
        for task in device:
            parts.append(_task_parts(task))
    return tuple(parts)


def schedule_digest(schedule: Schedule) -> str:
    return hashlib.sha256(repr(_schedule_parts(schedule)).encode()).hexdigest()
