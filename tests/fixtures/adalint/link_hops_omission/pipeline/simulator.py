"""The pre-PR4 ``schedule_digest`` that silently dropped ``link_hops``.

This is the historic bug the digest-coverage rule exists to prevent: a
link-degraded schedule is structurally identical to its nominal twin —
same tasks, durations, and edges — so a digest that skips ``link_hops``
serves a cached nominal result to a perturbed run. The companion test
asserts adalint flags exactly ``Schedule.link_hops`` here.
"""

from __future__ import annotations

import hashlib
from typing import List

from .tasks import Schedule


def schedule_digest(schedule: Schedule) -> str:
    parts: List[str] = [
        f"sim-v1|{schedule.num_devices}|{schedule.hop_time!r}",
        repr(schedule.device_static_bytes),
        repr(schedule.device_buffer_bytes),
    ]
    append = parts.append
    for tasks in schedule.device_tasks:
        append("|device")
        for task in tasks:
            k = task.key
            append(
                f"{k.pipe},{k.stage},{k.micro_batch},{k.kind.value},"
                f"{task.device},{task.duration!r},{task.activation_bytes!r},"
                f"{task.weight}"
            )
            for dep in task.deps:
                append(f"<{dep.pipe},{dep.stage},{dep.micro_batch},{dep.kind.value}")
    digest = hashlib.blake2b("\n".join(parts).encode(), digest_size=16)
    return digest.hexdigest()
