"""Trimmed copy of ``repro.pipeline.tasks`` for the adalint regression.

Same dataclasses (and the same ``link_hops`` field) the real module
declares, so the default digest-coverage contract resolves against this
tree exactly as it does against ``src/repro``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class TaskKind(enum.Enum):
    FORWARD = "F"
    BACKWARD = "B"


@dataclass(frozen=True)
class TaskKey:
    pipe: int
    stage: int
    micro_batch: int
    kind: TaskKind


@dataclass(frozen=True)
class Task:
    key: TaskKey
    device: int
    duration: float
    deps: Tuple[TaskKey, ...] = ()
    activation_bytes: float = 0.0
    weight: int = 1


@dataclass
class Schedule:
    name: str
    num_devices: int
    device_tasks: List[List[Task]]
    hop_time: float = 0.0
    device_static_bytes: Tuple[float, ...] = ()
    device_buffer_bytes: Tuple[float, ...] = ()
    num_micro_batches: int = 0
    link_hops: Optional[Dict[Tuple[int, int], float]] = field(default=None)
