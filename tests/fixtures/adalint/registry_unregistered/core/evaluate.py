"""Fixture mirror of the schedule-builder site.

The planted bug: "wavefront" is declared in SCHEDULE_KINDS but this
builder was never taught about it — a plan requesting it raises at run
time instead of failing the lint gate.
"""


def build_schedule_for_plan(plan, cluster, schedule_kind="1f1b"):
    if schedule_kind in ("1f1b", "2bp", "overlap"):
        return ("sync", schedule_kind)
    if schedule_kind in ("gpipe", "chimera", "chimerad"):
        return ("batch", schedule_kind)
    if schedule_kind == "interleaved":
        return ("chunked", schedule_kind)
    raise ValueError(schedule_kind)
