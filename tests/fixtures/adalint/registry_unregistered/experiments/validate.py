"""Fixture mirror of the validate-battery memory-audit check site."""


def _check_memory_audit():
    kinds = ("1f1b", "2bp", "overlap", "gpipe", "chimera", "chimerad", "wavefront")
    return ("memory audit", True, ",".join(kinds))
