"""Fixture mirror of the CLI --schedule choices site."""


def _build_parser():
    return {"schedule_choices": ["1f1b", "2bp", "overlap", "gpipe", "chimera", "chimerad", "interleaved", "wavefront"]}
