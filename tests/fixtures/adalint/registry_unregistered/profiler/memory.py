"""Fixture mirror of the schedule-kind registry and its memory-model site."""

SCHEDULE_KINDS = ("1f1b", "2bp", "overlap", "gpipe", "chimera", "chimerad", "interleaved", "wavefront")


def in_flight_micro_batches(kind, stage, num_devices, num_micro_batches):
    if kind in ("1f1b", "2bp", "overlap", "wavefront"):
        return min(num_micro_batches, num_devices - stage)
    if kind in ("gpipe", "chimera", "chimerad"):
        return num_micro_batches
    if kind == "interleaved":
        return min(num_micro_batches, 2 * (num_devices - stage))
    raise ValueError(kind)
