"""Fixture: scalar and vector lowering share one canonical op order."""


def scalar_lower(duration, factor, delay):
    duration = duration * factor
    duration = duration + delay
    return duration


def vector_lower(durations, factors, delays):
    durations = durations * factors
    durations = durations + delays
    return durations
