"""Fixture mirror of the memory-audit defaults site.

"interleaved" is deliberately absent (needs a chunked plan); the
production contract carries a reasoned exemption for it.
"""


def audit_plan_over_schedules(plan, schedule_kinds=("1f1b", "2bp", "overlap", "gpipe", "chimera", "chimerad", "wavefront")):
    return [(kind, plan) for kind in schedule_kinds]
