"""Tests for repro.model.units — the Figure 4 computation-unit split."""

import pytest

from repro.config import TrainingConfig
from repro.model.layers import LayerKind
from repro.model.spec import gpt3_175b, llama2_70b, tiny_gpt
from repro.model.units import units_for_layer


def _train(**kwargs):
    defaults = dict(sequence_length=2048, global_batch_size=8)
    defaults.update(kwargs)
    return TrainingConfig(**defaults)


class TestAttentionUnits:
    def test_unit_names_match_figure4(self):
        units = units_for_layer(LayerKind.ATTENTION, gpt3_175b(), _train(), 8)
        assert [u.name for u in units] == [
            "attn.norm",
            "attn.q",
            "attn.k",
            "attn.v",
            "attn.core",
            "attn.out",
        ]

    def test_only_closing_gemm_is_always_saved(self):
        units = units_for_layer(LayerKind.ATTENTION, gpt3_175b(), _train(), 8)
        assert [u.name for u in units if u.always_saved] == ["attn.out"]

    def test_gqa_shrinks_kv_projections(self):
        units = {
            u.name: u
            for u in units_for_layer(LayerKind.ATTENTION, llama2_70b(), _train(), 8)
        }
        ratio = llama2_70b().num_heads // llama2_70b().num_kv_heads
        assert units["attn.q"].saved_output_elements == pytest.approx(
            ratio * units["attn.k"].saved_output_elements
        )
        assert units["attn.k"].flops_forward == pytest.approx(
            units["attn.v"].flops_forward
        )

    def test_flash_attention_keeps_only_statistics(self):
        spec = gpt3_175b()
        with_flash = units_for_layer(
            LayerKind.ATTENTION, spec, _train(flash_attention=True), 8
        )
        without = units_for_layer(
            LayerKind.ATTENTION, spec, _train(flash_attention=False), 8
        )
        core_flash = next(u for u in with_flash if u.name == "attn.core")
        core_plain = next(u for u in without if u.name == "attn.core")
        # The probability matrix is quadratic in sequence length; flash
        # statistics are linear, hence far smaller.
        assert core_flash.internal_saved_elements < core_plain.internal_saved_elements / 100

    def test_core_flops_quadratic_in_sequence(self):
        spec = gpt3_175b()
        short = units_for_layer(LayerKind.ATTENTION, spec, _train(), 8)
        long = units_for_layer(
            LayerKind.ATTENTION, spec, _train(sequence_length=4096), 8
        )
        core_s = next(u for u in short if u.name == "attn.core")
        core_l = next(u for u in long if u.name == "attn.core")
        assert core_l.flops_forward == pytest.approx(4 * core_s.flops_forward)

    def test_tensor_parallel_shards_projections(self):
        spec = gpt3_175b()
        t1 = units_for_layer(LayerKind.ATTENTION, spec, _train(), 1)
        t8 = units_for_layer(LayerKind.ATTENTION, spec, _train(), 8)
        q1 = next(u for u in t1 if u.name == "attn.q")
        q8 = next(u for u in t8 if u.name == "attn.q")
        assert q1.saved_output_elements == pytest.approx(8 * q8.saved_output_elements)
        assert q1.flops_forward == pytest.approx(8 * q8.flops_forward)


class TestFFNUnits:
    def test_unit_names(self):
        units = units_for_layer(LayerKind.FFN, gpt3_175b(), _train(), 8)
        assert [u.name for u in units] == ["ffn.norm", "ffn.in", "ffn.act", "ffn.out"]

    def test_gated_ffn_doubles_input_activations(self):
        gated = units_for_layer(LayerKind.FFN, llama2_70b(), _train(), 8)
        ffn_in = next(u for u in gated if u.name == "ffn.in")
        ffn_act = next(u for u in gated if u.name == "ffn.act")
        assert ffn_in.saved_output_elements == pytest.approx(
            2 * ffn_act.saved_output_elements
        )
        assert len(ffn_in.ops) == 2

    def test_closing_gemm_always_saved(self):
        units = units_for_layer(LayerKind.FFN, gpt3_175b(), _train(), 8)
        assert [u.name for u in units if u.always_saved] == ["ffn.out"]


class TestOtherLayers:
    def test_embedding_single_unit(self):
        units = units_for_layer(LayerKind.EMBEDDING, gpt3_175b(), _train(), 8)
        assert [u.name for u in units] == ["embed.lookup"]
        assert not units[0].always_saved

    def test_head_units(self):
        units = units_for_layer(LayerKind.HEAD, gpt3_175b(), _train(), 8)
        assert [u.name for u in units] == ["head.norm", "head.proj"]

    def test_head_projection_dominates_flops(self):
        units = units_for_layer(LayerKind.HEAD, gpt3_175b(), _train(), 8)
        norm, proj = units
        assert proj.flops_forward > 100 * norm.flops_forward

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            units_for_layer("decoder", gpt3_175b(), _train(), 8)


class TestSequenceParallel:
    def test_sequence_parallel_shards_norm_activations(self):
        spec = gpt3_175b()
        with_sp = units_for_layer(
            LayerKind.ATTENTION, spec, _train(sequence_parallel=True), 8
        )
        without = units_for_layer(
            LayerKind.ATTENTION, spec, _train(sequence_parallel=False), 8
        )
        norm_sp = next(u for u in with_sp if u.name == "attn.norm")
        norm_plain = next(u for u in without if u.name == "attn.norm")
        assert norm_plain.saved_output_elements == pytest.approx(
            8 * norm_sp.saved_output_elements
        )

    def test_backward_flops_exceed_forward(self):
        for kind in LayerKind:
            for unit in units_for_layer(kind, gpt3_175b(), _train(), 8):
                assert unit.flops_backward >= unit.flops_forward, unit.name

    def test_saved_elements_positive(self):
        for kind in LayerKind:
            for unit in units_for_layer(kind, tiny_gpt(), _train(), 1):
                assert unit.saved_elements > 0
