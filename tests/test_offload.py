"""Tests for the offload-augmented recomputation baseline."""

import pytest

from repro.baselines.offload import OffloadModel, plan_offload
from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext, plan_even_partitioning
from repro.hardware.cluster import cluster_a


@pytest.fixture
def ctx(gpt3):
    train = TrainingConfig(sequence_length=16384, global_batch_size=32)
    return PlannerContext(
        cluster_a(),
        gpt3,
        train,
        ParallelConfig(8, 8, 1),
        memory_limit_bytes=70 * 1024**3,
    )


class TestOffloadModel:
    def test_exposed_cost_scales_with_bytes(self):
        model = OffloadModel(bandwidth=10e9, overlap_fraction=0.0)
        assert model.exposed_cost(10e9) == pytest.approx(2.0)

    def test_full_overlap_is_free(self):
        model = OffloadModel(bandwidth=10e9, overlap_fraction=1.0)
        assert model.exposed_cost(10e9) == 0.0


class TestOffloadPlanning:
    def test_slow_link_degenerates_to_recompute_only(self, ctx):
        """With a uselessly slow host link, offloading never wins a single
        unit and the plan must match plain adaptive recomputation exactly."""
        recompute_only = plan_even_partitioning(ctx)
        offloaded = plan_offload(ctx, OffloadModel(bandwidth=1e8, overlap_fraction=0.0))
        assert offloaded.modeled_iteration_time == pytest.approx(
            recompute_only.modeled_iteration_time
        )

    def test_fast_link_improves_backward_time(self, ctx):
        recompute_only = plan_even_partitioning(ctx)
        offloaded = plan_offload(ctx, OffloadModel(bandwidth=64e9, overlap_fraction=0.9))
        assert offloaded.feasible
        assert offloaded.modeled_iteration_time < recompute_only.modeled_iteration_time

    def test_gain_monotone_in_bandwidth(self, ctx):
        times = []
        for bandwidth in (5e9, 25e9, 100e9):
            plan = plan_offload(ctx, OffloadModel(bandwidth, overlap_fraction=0.8))
            times.append(plan.modeled_iteration_time)
        assert times == sorted(times, reverse=True)

    def test_memory_constraint_still_respected(self, ctx):
        plan = plan_offload(ctx, OffloadModel())
        for stage in plan.stages:
            assert stage.memory.total_bytes <= ctx.capacity_bytes * 1.001

    def test_infeasible_when_static_alone_overflows(self, gpt3):
        train = TrainingConfig(sequence_length=16384, global_batch_size=32)
        tiny = PlannerContext(
            cluster_a(), gpt3, train, ParallelConfig(8, 2, 4)
        )
        assert not plan_offload(tiny).feasible
