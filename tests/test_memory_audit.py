"""Schedule-aware in-flight accounting and the model-vs-simulator audit.

Covers the two halves of the bugfix:

* the per-schedule in-flight formulas of
  :func:`repro.profiler.memory.in_flight_micro_batches` against the
  simulator's measured activation-liveness peaks (exact for 1F1B, GPipe
  and interleaved; conservative for the Chimera variants);
* the differential audit (:mod:`repro.pipeline.memory_audit`) and the
  regression the old hardwired ``p - s`` produced — a 1F1B-priced plan
  the GPipe simulator OOMs, and the converse, where clamping to
  ``min(n, p - s)`` frees budget and admits a strictly faster plan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import build_schedule_for_plan, evaluate_plan
from repro.core.search import PlannerContext, plan_adapipe
from repro.hardware.cluster import cluster_a
from repro.model.spec import tiny_gpt
from repro.pipeline.memory_audit import (
    audit_plan_over_schedules,
    audit_schedule_memory,
    modeled_device_peaks,
)
from repro.pipeline.schedules import (
    chimera_schedule,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_2bp,
    one_f_one_b_overlapped,
    one_f_one_b_schedule,
)
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts
from repro.pipeline.tracing import (
    stage_in_flight_micro_batch_peaks,
    stage_in_flight_peaks,
)
from repro.profiler.memory import MemoryModel, in_flight_micro_batches


def _costs(p, activation=100.0, rng=None):
    """Per-stage costs; random durations when an rng is given."""
    out = []
    for s in range(p):
        f = 1.0 + (rng.uniform(0.0, 1.0) if rng is not None else 0.1 * s)
        b = 2.0 + (rng.uniform(0.0, 1.0) if rng is not None else 0.05 * s)
        act = activation * (1.0 + (rng.uniform(0.0, 1.0) if rng is not None else 0.0))
        out.append(
            StageCosts(
                forward=f,
                backward=b,
                activation_bytes=act,
                static_bytes=7.0,
                buffer_bytes=3.0,
            )
        )
    return out


class TestInFlightFormulas:
    def test_1f1b_is_clamped(self):
        assert in_flight_micro_batches("1f1b", 0, 4, 8) == 4
        assert in_flight_micro_batches("1f1b", 3, 4, 8) == 1
        # The fixed bug: n < p must clamp to n, not report p - s.
        assert in_flight_micro_batches("1f1b", 0, 8, 3) == 3
        assert in_flight_micro_batches("1f1b", 6, 8, 3) == 2

    def test_gpipe_holds_everything(self):
        for s in range(4):
            assert in_flight_micro_batches("gpipe", s, 4, 9) == 9

    def test_chimera_window(self):
        # p=4, n=8: 4 entities per direction, window min(p - s, p/2).
        assert in_flight_micro_batches("chimera", 0, 4, 8) == 2
        assert in_flight_micro_batches("chimera", 3, 4, 8) == 1
        # ChimeraD counts micro-batches: doubled entities pin 2 each.
        assert in_flight_micro_batches("chimerad", 0, 4, 8) == 4
        assert in_flight_micro_batches("chimerad", 3, 4, 8) == 2

    def test_memory_model_delegates(self, tiny_ctx):
        model = tiny_ctx.profiler.memory
        n = tiny_ctx.num_micro_batches
        p = tiny_ctx.parallel.pipeline_parallel
        assert [model.in_flight(s) for s in range(p)] == [
            min(n, p - s) for s in range(p)
        ]
        gpipe_model = model.with_schedule("gpipe")
        assert [gpipe_model.in_flight(s) for s in range(p)] == [n] * p
        with pytest.raises(ValueError):
            model.with_schedule("no-such-schedule")

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            in_flight_micro_batches("1f1b", 4, 4, 2)
        with pytest.raises(ValueError):
            in_flight_micro_batches("1f1b", 0, 4, 0)
        with pytest.raises(ValueError):
            in_flight_micro_batches("interleaved", 0, 8, 8)  # no num_devices
        with pytest.raises(ValueError):
            in_flight_micro_batches("mystery", 0, 4, 2)


class TestInterleavedExactness:
    @pytest.mark.parametrize(
        "p,v,n",
        [
            (2, 1, 2),
            (2, 1, 4),
            (4, 1, 8),
            (2, 2, 4),
            (4, 2, 8),
            (4, 3, 8),
            (3, 2, 6),
            (2, 4, 8),
        ],
    )
    def test_analytic_matches_simulated(self, p, v, n):
        costs = _costs(p * v)
        result = simulate(interleaved_1f1b_schedule(costs, n, p, hop_time=0.01))
        measured = stage_in_flight_peaks(result)
        for stage in range(p * v):
            assert (
                in_flight_micro_batches("interleaved", stage, p * v, n, num_devices=p)
                == measured[(0, stage)]
            )

    def test_single_chunk_exceeds_plain_1f1b(self):
        # Megatron's interleaved warmup is 2(p - d - 1) virtual forwards
        # even at v=1, so its in-flight counts are >= plain 1F1B's (and
        # strictly greater for early stages once n allows) — one more
        # reason per-schedule accounting can't be approximated by p - s.
        for p, n in ((2, 4), (4, 2), (4, 8)):
            for s in range(p):
                interleaved = in_flight_micro_batches(
                    "interleaved", s, p, n, num_devices=p
                )
                assert interleaved >= in_flight_micro_batches("1f1b", s, p, n)
                assert interleaved == min(n, 2 * (p - s) - 1)


class TestMeasuredPeakOracles:
    """`stage_in_flight_peaks` against the analytic formulas (satellite)."""

    def test_1f1b_n_at_least_p(self):
        p, n = 4, 9
        peaks = stage_in_flight_peaks(
            simulate(one_f_one_b_schedule(_costs(p), n))
        )
        assert {s: peaks[(0, s)] for s in range(p)} == {
            s: p - s for s in range(p)
        }

    def test_1f1b_n_below_p(self):
        p, n = 6, 3
        peaks = stage_in_flight_peaks(
            simulate(one_f_one_b_schedule(_costs(p), n))
        )
        assert {s: peaks[(0, s)] for s in range(p)} == {
            s: min(n, p - s) for s in range(p)
        }

    def test_gpipe_holds_all(self):
        p, n = 4, 7
        peaks = stage_in_flight_peaks(simulate(gpipe_schedule(_costs(p), n)))
        assert all(peaks[(0, s)] == n for s in range(p))

    def test_weighted_peaks_match_unweighted_for_unit_weights(self):
        result = simulate(one_f_one_b_schedule(_costs(5), 7))
        assert stage_in_flight_micro_batch_peaks(result) == stage_in_flight_peaks(
            result
        )

    def test_chimerad_weighted_peaks_double_entities(self):
        result = simulate(
            chimera_schedule(_costs(4), 8, forward_doubling=True)
        )
        entity = stage_in_flight_peaks(result)
        weighted = stage_in_flight_micro_batch_peaks(result)
        assert weighted == {key: 2 * count for key, count in entity.items()}


class TestAuditConservativeness:
    """Randomized costs x the schedule zoo: modelled >= simulated."""

    KINDS = (
        "1f1b",
        "2bp",
        "overlap",
        "gpipe",
        "chimera",
        "chimerad",
        "interleaved",
    )

    def _build(self, kind, costs, n, p):
        if kind == "1f1b":
            return one_f_one_b_schedule(costs, n)
        if kind == "2bp":
            return one_f_one_b_2bp(costs, n)
        if kind == "overlap":
            return one_f_one_b_overlapped(
                costs, n, recompute_times=[0.25 * c.backward for c in costs]
            )
        if kind == "gpipe":
            return gpipe_schedule(costs, n)
        if kind == "chimera":
            return chimera_schedule(costs, n)
        if kind == "chimerad":
            return chimera_schedule(costs, n, forward_doubling=True)
        return interleaved_1f1b_schedule(costs * 2, n, p)

    @pytest.mark.parametrize("kind", KINDS)
    def test_randomized_schedules_are_conservative(self, kind):
        rng = np.random.default_rng(hash(kind) % 2**32)
        for trial in range(6):
            p = int(rng.choice([2, 4]))
            n = int(rng.choice([1, 2, 3])) * 4
            costs = _costs(p, rng=rng)
            schedule = self._build(kind, costs, n, p)
            report = audit_schedule_memory(schedule, kind)
            assert report.conservative, (
                f"{kind} p={p} n={n} trial={trial}:\n{report.describe()}"
            )

    def test_homogeneous_1f1b_is_tight(self):
        for p, n in ((2, 4), (4, 4), (4, 12), (6, 3)):
            costs = [
                StageCosts(
                    forward=1.0,
                    backward=2.0,
                    activation_bytes=50.0,
                    static_bytes=10.0,
                    buffer_bytes=2.0,
                )
                for _ in range(p)
            ]
            report = audit_schedule_memory(
                one_f_one_b_schedule(costs, n), "1f1b"
            )
            assert report.conservative
            assert report.max_abs_rel_gap <= 1e-6
            assert all(stage.exact for stage in report.stages)

    @pytest.mark.parametrize("kind", ("2bp", "overlap"))
    def test_new_families_are_exact_not_just_conservative(self, kind):
        # The ISSUE's acceptance bar: the audit must report the 2BP and
        # overlapped families "exact" — modelled in-flight equal to the
        # simulator's measured liveness on every stage, peaks matching to
        # float tolerance — not merely conservative.
        rng = np.random.default_rng(hash(kind) % 2**32 + 1)
        for p, n in ((2, 4), (4, 4), (4, 12), (6, 3)):
            costs = _costs(p, rng=rng)
            report = audit_schedule_memory(self._build(kind, costs, n, p), kind)
            assert report.conservative
            assert all(stage.exact for stage in report.stages), (
                f"{kind} p={p} n={n}:\n{report.describe()}"
            )
            assert report.max_abs_rel_gap <= 1e-6

    def test_modeled_device_peaks_include_statics(self):
        costs = _costs(3)
        schedule = one_f_one_b_schedule(costs, 5)
        peaks = modeled_device_peaks(schedule, "1f1b")
        assert peaks == list(
            simulate(schedule).device_peak_bytes
        )  # homogeneous per-device layout: model is exact


class TestPlanIntegration:
    def test_evaluate_plan_metadata_keys(self, tiny_ctx):
        evaluation = evaluate_plan(
            plan_adapipe(tiny_ctx), tiny_ctx.cluster, "1f1b"
        )
        meta = evaluation.plan.metadata
        assert meta["mem_model_conservative"] is True
        assert meta["mem_model_peak_bytes"] >= meta["mem_sim_peak_bytes"]
        assert 0.0 <= meta["mem_model_max_rel_gap"] <= 1e-6

    def test_peak_memory_repricing(self, tiny_ctx):
        plan = plan_adapipe(tiny_ctx)
        baked = plan.peak_memory_bytes()
        assert plan.peak_memory_bytes("1f1b") == baked
        n = tiny_ctx.num_micro_batches
        for s, (gpipe_total, base_total) in enumerate(
            zip(plan.peak_memory_bytes("gpipe"), baked)
        ):
            assert gpipe_total >= base_total  # n >= min(n, p - s)
            expected = (
                plan.stages[s].memory.static_bytes
                + plan.stages[s].memory.buffer_bytes
                + plan.stages[s].memory.saved_per_microbatch * n
            )
            assert gpipe_total == pytest.approx(expected)

    def test_audit_plan_over_schedules_skips_invalid(self, tiny_ctx):
        plan = plan_adapipe(tiny_ctx)
        reports = audit_plan_over_schedules(plan, tiny_ctx.cluster)
        assert set(reports) == {
            "1f1b",
            "2bp",
            "overlap",
            "gpipe",
            "chimera",
            "chimerad",
        }
        assert all(r.conservative for r in reports.values())
        # n=4 splits for ChimeraD here; a 6-micro-batch workload would not.


def _regression_context(memory_limit_bytes):
    """n=2 < p=4 — the regime the hardwired ``p - s`` got wrong."""
    spec = tiny_gpt(num_layers=16, hidden_size=32, vocab_size=40)
    train = TrainingConfig(
        sequence_length=64,
        global_batch_size=2,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    return PlannerContext(
        cluster_a(1),
        spec,
        train,
        ParallelConfig(1, 4, 1),
        memory_limit_bytes=memory_limit_bytes,
    )


_REGRESSION_CAP = 1280 * 1024


def _legacy_in_flight(self, stage):
    """The pre-fix hardwired rule: ``p - s``, schedule-blind."""
    return self.parallel.pipeline_parallel - stage


class TestScheduleAwareRegression:
    """The acceptance-criteria regression pair, one tuned configuration."""

    def test_legacy_accounting_admits_plan_gpipe_ooms(self, monkeypatch):
        with monkeypatch.context() as patched:
            patched.setattr(MemoryModel, "in_flight", _legacy_in_flight)
            ctx = _regression_context(_REGRESSION_CAP)
            legacy_plan = plan_adapipe(ctx)
        assert legacy_plan.feasible  # the old model declared it fits
        # ... and its own (baked, 1F1B-priced) totals stay under the cap:
        assert all(b <= _REGRESSION_CAP for b in legacy_plan.peak_memory_bytes())

        # The simulator's memory tracker OOMs it under GPipe:
        cluster = cluster_a(1)
        evaluation = evaluate_plan(
            legacy_plan, cluster, "gpipe", enforce_memory=False
        )
        sim_peaks = evaluation.simulation.device_peak_bytes
        assert any(peak > _REGRESSION_CAP for peak in sim_peaks)

        # The schedule-aware pricing now catches it without simulating:
        gpipe_priced = legacy_plan.peak_memory_bytes("gpipe")
        assert any(b > _REGRESSION_CAP for b in gpipe_priced)
        # ... and the audit confirms the model stays conservative, i.e. the
        # re-priced totals really cover the simulated peaks.
        schedule = build_schedule_for_plan(legacy_plan, cluster, "gpipe")
        report = audit_schedule_memory(schedule, "gpipe")
        assert report.conservative

    def test_clamp_admits_strictly_faster_plan(self, monkeypatch):
        with monkeypatch.context() as patched:
            patched.setattr(MemoryModel, "in_flight", _legacy_in_flight)
            legacy_plan = plan_adapipe(_regression_context(_REGRESSION_CAP))
        ctx = _regression_context(_REGRESSION_CAP)
        clamped_plan = plan_adapipe(ctx)
        assert legacy_plan.feasible and clamped_plan.feasible
        # min(n, p - s) < p - s frees budget -> more units saved -> less
        # recomputation in the backward pass -> strictly faster.
        assert (
            clamped_plan.modeled_iteration_time
            < legacy_plan.modeled_iteration_time - 1e-12
        )
        assert sum(clamped_plan.saved_unit_counts()) > sum(
            legacy_plan.saved_unit_counts()
        )
        # The extra saving is genuine: the 1F1B simulation does not OOM.
        evaluation = evaluate_plan(clamped_plan, ctx.cluster, "1f1b")
        assert not evaluation.oom
        assert all(
            peak <= _REGRESSION_CAP
            for peak in evaluation.simulation.device_peak_bytes
        )
        assert evaluation.plan.metadata["mem_model_conservative"] is True
