"""Tests for adalint (repro.analysis): framework, rules, reporters, CLI.

Every rule gets a firing and a non-firing golden snippet; the framework
tests pin suppression handling (including the bare/unknown meta-rules),
the baseline filter, and the JSON report schema. The acceptance pair:
the re-introduced historic ``link_hops`` digest omission fixture must be
flagged, and the real ``src/repro`` tree must be clean.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import (
    FRAMEWORK_RULES,
    REPORT_VERSION,
    Finding,
    LintContext,
    default_rules,
    load_baseline,
    parse_suppressions,
    registered_rule_names,
    render_text,
    result_to_dict,
    result_to_sarif,
    run_lint,
)
from repro.analysis.framework import clear_parse_cache, parse_cached
from repro.analysis.rules import (
    DEFAULT_FLOAT_CONTRACTS,
    DigestContract,
    DigestCoverageRule,
    FieldAllowance,
    FloatOrderContract,
    FloatOrderRule,
    FloatSite,
    PurityContract,
    RegistryCompletenessRule,
    TransformPurityRule,
)
from repro.experiments.cli import main as cli_main

SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "adalint"


def _lint_file(tmp_path, source, name="snippet.py", rules=None):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([tmp_path], rules=rules)


def _rules_fired(result):
    return {finding.rule for finding in result.findings}


class TestFramework:
    def test_all_rules_registered(self):
        assert set(registered_rule_names()) == {
            "determinism",
            "digest-coverage",
            "float-order-divergence",
            "frozen-mutation",
            "registry-completeness",
            "transform-purity",
            "unit-consistency",
        }
        assert {rule.name for rule in default_rules()} == set(
            registered_rule_names()
        )

    def test_clean_file_is_clean(self, tmp_path):
        result = _lint_file(tmp_path, "x = 1\n")
        assert result.ok and result.files_scanned == 1
        assert result.findings == result.suppressed == result.baselined == []

    def test_syntax_error_reported_as_parse_error(self, tmp_path):
        result = _lint_file(tmp_path, "def broken(:\n")
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert not result.ok

    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(rule="r", severity="fatal", path="p.py", line=1, message="m")

    def test_suppression_parsing(self):
        table = parse_suppressions(
            [
                "x = 1",
                "y = 2  # adalint: disable=determinism -- observability",
                "z = 3  # adalint: disable=determinism, unit-consistency -- both",
            ]
        )
        assert set(table) == {2, 3}
        assert table[2].rules == ("determinism",)
        assert table[2].reason == "observability"
        assert table[3].covers("unit-consistency")

    def test_suppression_with_reason_mutes_the_finding(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time\n"
            "t = time.time()  # adalint: disable=determinism -- just a log stamp\n",
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["determinism"]

    def test_disable_all_covers_every_rule(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time\n"
            "t = time.time()  # adalint: disable=all -- demo snippet\n",
        )
        assert result.ok and len(result.suppressed) == 1

    def test_bare_suppression_is_itself_a_finding(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time\nt = time.time()  # adalint: disable=determinism\n",
        )
        # The reason-less suppression does NOT mute, and is reported.
        assert _rules_fired(result) == {"determinism", "bare-suppression"}

    def test_unknown_suppression_is_reported(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "x = 1  # adalint: disable=no-such-rule -- typo'd rule name\n",
        )
        assert _rules_fired(result) == {"unknown-suppression"}

    def test_framework_findings_cannot_be_suppressed(self, tmp_path):
        # A reason-less suppression stays a finding even if another comment
        # tried to disable the meta-rule itself.
        assert "bare-suppression" in FRAMEWORK_RULES
        result = _lint_file(
            tmp_path,
            "import time\n"
            "t = time.time()  # adalint: disable=determinism, bare-suppression\n",
        )
        assert "bare-suppression" in _rules_fired(result)

    def test_baseline_mutes_on_rule_path_message(self, tmp_path):
        source = "import time\nt = time.time()\n"
        first = _lint_file(tmp_path, source)
        assert not first.ok
        baseline = {f.baseline_key() for f in first.findings}
        # Shift the finding to a different line: the baseline still matches.
        second = _lint_file(tmp_path, "# comment\n" + source)
        shifted = run_lint([tmp_path], baseline=baseline)
        assert second.findings and shifted.ok
        assert [f.rule for f in shifted.baselined] == ["determinism"]

    def test_load_baseline_accepts_full_report(self, tmp_path):
        result = _lint_file(tmp_path, "import time\nt = time.time()\n")
        report = tmp_path / "baseline.json"
        report.write_text(json.dumps(result_to_dict(result)))
        keys = load_baseline(report)
        assert keys == {f.baseline_key() for f in result.findings}


class TestDeterminismRule:
    def test_global_rng_draw_fires(self, tmp_path):
        result = _lint_file(tmp_path, "import random\nx = random.random()\n")
        assert _rules_fired(result) == {"determinism"}

    def test_aliased_numpy_global_draw_fires(self, tmp_path):
        result = _lint_file(
            tmp_path, "import numpy as np\nnp.random.shuffle([1, 2])\n"
        )
        assert _rules_fired(result) == {"determinism"}

    def test_unseeded_constructor_fires_seeded_passes(self, tmp_path):
        fired = _lint_file(tmp_path, "import random\nr = random.Random()\n")
        assert _rules_fired(fired) == {"determinism"}
        clean = _lint_file(
            tmp_path,
            "import random\nimport numpy as np\n"
            "r = random.Random(0)\ng = np.random.default_rng(7)\n"
            "x = g.normal()\n",
        )
        assert clean.ok

    def test_wall_clock_fires_outside_measurement_layers(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time as clock\nfrom datetime import datetime\n"
            "a = clock.perf_counter()\nb = datetime.now()\n",
        )
        assert [f.rule for f in result.findings] == ["determinism"] * 2

    def test_wall_clock_allowed_under_benchmarks(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time\nstart = time.perf_counter()\n",
            name="benchmarks/bench_sim.py",
        )
        assert result.ok

    def test_set_iteration_fires_sorted_and_dict_pass(self, tmp_path):
        fired = _lint_file(
            tmp_path,
            "for x in {1, 2}:\n    pass\n"
            "ys = [y for y in set([3, 4])]\n",
        )
        assert [f.rule for f in fired.findings] == ["determinism"] * 2
        clean = _lint_file(
            tmp_path,
            "for x in sorted({1, 2}):\n    pass\n"
            "d = {'a': 1}\nfor k in d:\n    pass\n",
        )
        assert clean.ok


class TestUnitConsistencyRule:
    def test_cross_dimension_add_and_compare_fire(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "def f(size_bytes, busy_seconds):\n"
            "    total = size_bytes + busy_seconds\n"
            "    if size_bytes > busy_seconds:\n"
            "        total += 1\n"
            "    return total\n",
            name="core/costs.py",
        )
        assert [f.rule for f in result.findings] == ["unit-consistency"] * 2

    def test_augassign_cross_dimension_fires(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "def f(peak_bytes, wait_seconds):\n"
            "    peak_bytes += wait_seconds\n"
            "    return peak_bytes\n",
            # Any enforced dir works; avoid profiler/memory.py, which is
            # the schedule-kind registry anchor and would add a broken-
            # contract finding for this registry-less snippet.
            name="profiler/activation.py",
        )
        assert _rules_fired(result) == {"unit-consistency"}

    def test_same_dimension_and_conversion_calls_pass(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "def f(a_bytes, b_bytes, c_seconds, bw_bps):\n"
            "    total_bytes = a_bytes + b_bytes\n"
            "    t = c_seconds + seconds_for(a_bytes, bw_bps)\n"
            "    rate = a_bytes / c_seconds\n"  # division -> unknown dim
            "    return total_bytes, t, rate\n",
            name="hardware/model.py",
        )
        assert result.ok

    def test_not_enforced_outside_numeric_core(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "def f(a_bytes, b_seconds):\n    return a_bytes + b_seconds\n",
            name="report/charts.py",
        )
        assert result.ok


class TestFrozenMutationRule:
    def test_setattr_outside_post_init_fires(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "class C:\n"
            "    def poke(self):\n"
            "        object.__setattr__(self, 'x', 1)\n"
            "object.__setattr__(C, 'y', 2)\n",
        )
        assert [f.rule for f in result.findings] == ["frozen-mutation"] * 2

    def test_setattr_inside_post_init_and_setstate_passes(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "class C:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, '_hash', 7)\n"
            "    def __setstate__(self, state):\n"
            "        object.__setattr__(self, '_hash', 8)\n",
        )
        assert result.ok


def _digest_tree(tmp_path, digest_source):
    (tmp_path / "data.py").write_text(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class Point:\n"
        "    x: int\n"
        "    y: int\n"
    )
    (tmp_path / "digest.py").write_text(digest_source)
    return tmp_path


def _point_rule(allow=(), required=()):
    contract = DigestContract(
        digest_path="digest.py",
        digest_name="point_digest",
        sources=(("data.py", "Point"),),
        allow=allow,
        required_names=required,
    )
    return [DigestCoverageRule(contracts=(contract,))]


class TestDigestCoverageRule:
    def test_omitted_field_fires(self, tmp_path):
        _digest_tree(tmp_path, "def point_digest(p):\n    return str(p.x)\n")
        result = run_lint([tmp_path], rules=_point_rule())
        assert len(result.findings) == 1
        assert "Point.y" in result.findings[0].message

    def test_full_coverage_passes(self, tmp_path):
        _digest_tree(
            tmp_path, "def point_digest(p):\n    return f'{p.x},{p.y}'\n"
        )
        assert run_lint([tmp_path], rules=_point_rule()).ok

    def test_allowance_with_reason_passes(self, tmp_path):
        _digest_tree(tmp_path, "def point_digest(p):\n    return str(p.x)\n")
        rules = _point_rule(
            allow=(FieldAllowance("Point.y", "label only, never simulated"),)
        )
        assert run_lint([tmp_path], rules=rules).ok

    def test_reasonless_allowance_fires(self, tmp_path):
        _digest_tree(tmp_path, "def point_digest(p):\n    return str(p.x)\n")
        rules = _point_rule(allow=(FieldAllowance("Point.y", "  "),))
        result = run_lint([tmp_path], rules=rules)
        assert any("carries no reason" in f.message for f in result.findings)

    def test_stale_allowance_fires(self, tmp_path):
        _digest_tree(
            tmp_path, "def point_digest(p):\n    return f'{p.x},{p.y}'\n"
        )
        rules = _point_rule(allow=(FieldAllowance("Point.z", "gone"),))
        result = run_lint([tmp_path], rules=rules)
        assert any("stale allowance" in f.message for f in result.findings)

    def test_missing_required_name_fires(self, tmp_path):
        _digest_tree(
            tmp_path, "def point_digest(p):\n    return f'{p.x},{p.y}'\n"
        )
        result = run_lint([tmp_path], rules=_point_rule(required=("seed",)))
        assert any("required input 'seed'" in f.message for f in result.findings)

    def test_missing_digest_function_breaks_contract(self, tmp_path):
        _digest_tree(tmp_path, "def other():\n    return 1\n")
        result = run_lint([tmp_path], rules=_point_rule())
        assert any("contract broken" in f.message for f in result.findings)

    def test_link_hops_fixture_is_flagged(self):
        # The historic PR 4 bug, re-introduced verbatim: the pre-fix
        # schedule_digest must produce exactly one finding, naming
        # Schedule.link_hops — no more, no less.
        result = run_lint([FIXTURES / "link_hops_omission"])
        assert [f.rule for f in result.findings] == ["digest-coverage"]
        assert "Schedule.link_hops" in result.findings[0].message
        assert result.findings[0].path == "pipeline/simulator.py"


class TestRegistryCompletenessRule:
    def test_unregistered_kind_fires(self):
        # "wavefront" is declared in the kind registry but missing from
        # exactly one consumer: the schedule builder's dispatch.
        result = run_lint([FIXTURES / "registry_unregistered"])
        assert [f.rule for f in result.findings] == ["registry-completeness"]
        finding = result.findings[0]
        assert finding.path == "profiler/memory.py"
        assert "wavefront" in finding.message
        assert "build_schedule_for_plan" in finding.message

    def test_fully_registered_tree_is_clean(self):
        result = run_lint([FIXTURES / "registry_complete"])
        assert result.ok and result.findings == []

    def test_default_contracts_declare_reasons_for_exemptions(self):
        for rule in default_rules():
            if not isinstance(rule, RegistryCompletenessRule):
                continue
            for contract in rule.contracts:
                for site in contract.sites:
                    for exemption in site.exempt:
                        assert exemption.reason.strip(), (
                            contract.name, site.path, exemption.member
                        )


class TestDigestCoverageV2:
    def test_deep_omission_fires_across_call_boundaries(self):
        # link_hops is read nowhere in the closure of schedule_digest,
        # which spans two helper calls — a file-local scan of the digest
        # function body alone could not name the field with confidence.
        result = run_lint([FIXTURES / "digest_chain_omission"])
        assert [f.rule for f in result.findings] == ["digest-coverage"]
        finding = result.findings[0]
        assert "Schedule.link_hops" in finding.message
        assert "call-graph closure" in finding.message
        assert finding.path == "pipeline/simulator.py"

    def test_deep_reads_count_as_coverage(self):
        # The covered twin reads link_hops two calls below schedule_digest.
        # v1's single-function analysis would flag it; the interprocedural
        # pass must not.
        result = run_lint([FIXTURES / "digest_chain_covered"])
        assert result.ok and result.findings == []


def _purity_rules():
    contract = PurityContract(anchor_path="transforms.py", roots=("lower",))
    return [TransformPurityRule(contracts=(contract,))]


class TestTransformPurityRule:
    def test_mutation_one_call_deep_fires(self):
        result = run_lint([FIXTURES / "purity_impure"], rules=_purity_rules())
        assert [f.rule for f in result.findings] == ["transform-purity"]
        finding = result.findings[0]
        assert "arg-mutation" in finding.message
        assert "_apply_delays" in finding.message

    def test_copy_then_write_is_clean(self):
        result = run_lint([FIXTURES / "purity_pure"], rules=_purity_rules())
        assert result.ok and result.findings == []


def _float_rules():
    contract = FloatOrderContract(
        name="engines",
        anchor_path="engines.py",
        expected=("mul(dur, factor)", "add(dur, delay)"),
        sites=(
            FloatSite(
                path="engines.py",
                func="scalar_lower",
                roles=(
                    ("duration", "dur"),
                    ("factor", "factor"),
                    ("delay", "delay"),
                ),
            ),
            FloatSite(
                path="engines.py",
                func="vector_lower",
                roles=(
                    ("durations", "dur"),
                    ("factors", "factor"),
                    ("delays", "delay"),
                ),
            ),
        ),
    )
    return [FloatOrderRule(contracts=(contract,))]


class TestFloatOrderRule:
    def test_reassociated_vector_side_fires(self):
        result = run_lint(
            [FIXTURES / "float_order_divergent"], rules=_float_rules()
        )
        assert [f.rule for f in result.findings] == ["float-order-divergence"]
        finding = result.findings[0]
        assert "vector_lower" in finding.message
        assert "mul(add(dur, delay), factor)" in finding.message

    def test_aligned_engines_are_clean(self):
        result = run_lint(
            [FIXTURES / "float_order_aligned"], rules=_float_rules()
        )
        assert result.ok and result.findings == []

    def test_default_contracts_are_non_vacuous_on_real_tree(self):
        # Guard against silent rot: every declared site must resolve to a
        # real function whose extracted fingerprint equals the contract's
        # expected tuple. A rename that broke a site would surface as a
        # lint finding too, but assert it here with the exact site named.
        from repro.analysis.rules.float_order import extract_fingerprint

        ctx = LintContext(root=SRC_REPRO)
        project = ctx.project_at(SRC_REPRO)
        for contract in DEFAULT_FLOAT_CONTRACTS:
            for site in contract.sites:
                info = project.function(site.path, site.func)
                assert info is not None, (contract.name, site.path, site.func)
                fingerprint = extract_fingerprint(info.node, site.role_map())
                assert fingerprint == contract.expected, (
                    contract.name, site.func, fingerprint
                )


class TestParseCache:
    def test_unchanged_file_is_parsed_once(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1\n")
        clear_parse_cache()
        first = parse_cached(path, "m.py")
        assert parse_cached(path, "m.py") is first

    def test_rewrite_invalidates(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("x = 1\n")
        clear_parse_cache()
        first = parse_cached(path, "m.py")
        path.write_text("x = 2  # changed\n")
        second = parse_cached(path, "m.py")
        assert second is not first
        assert "changed" in second.source

    def test_relpath_view_rewritten_without_reparse(self, tmp_path):
        # Two runs rooted differently share the parse but each sees its
        # own relative path (baseline keys depend on it).
        path = tmp_path / "pkg" / "m.py"
        path.parent.mkdir()
        path.write_text("x = 1\n")
        clear_parse_cache()
        wide = parse_cached(path, "pkg/m.py")
        narrow = parse_cached(path, "m.py")
        assert narrow.tree is wide.tree
        assert (wide.relpath, narrow.relpath) == ("pkg/m.py", "m.py")


class TestReporters:
    def _result(self, tmp_path):
        return _lint_file(tmp_path, "import time\nt = time.time()\n")

    def test_json_schema(self, tmp_path):
        payload = result_to_dict(self._result(tmp_path))
        assert payload["adalint_version"] == REPORT_VERSION
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {
            "findings": 1,
            "suppressed": 0,
            "baselined": 0,
        }
        (entry,) = payload["findings"]
        assert set(entry) == {"rule", "severity", "path", "line", "col", "message"}
        assert entry["rule"] == "determinism" and entry["line"] == 2
        # The col satellite: the AST node's column reaches the report.
        assert entry["col"] == 5
        json.dumps(payload)  # must be serializable as-is

    def test_text_rendering(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "snippet.py:2:5: error [determinism]" in text
        clean = render_text(_lint_file(tmp_path / "other", "x = 1\n"))
        assert "clean" in clean

    def test_col_absent_renders_without_column(self):
        finding = Finding(
            rule="determinism", severity="error", path="a.py", line=3,
            message="m",
        )
        assert finding.col == 0 and finding.location() == "a.py:3"

    def test_baseline_tolerates_missing_col(self, tmp_path):
        # Baselines written before columns existed carry no "col" key;
        # matching is on (rule, path, message) and must still mute.
        result = self._result(tmp_path)
        stripped = [
            {k: v for k, v in f.to_dict().items() if k != "col"}
            for f in result.findings
        ]
        report = tmp_path / "old_baseline.json"
        report.write_text(json.dumps({"findings": stripped}))
        muted = run_lint([tmp_path], baseline=load_baseline(report))
        assert muted.ok and [f.rule for f in muted.baselined] == ["determinism"]

    def test_sarif_schema(self, tmp_path):
        document = result_to_sarif(self._result(tmp_path))
        assert document["version"] == "2.1.0"
        (run,) = document["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "adalint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert "determinism" in rule_ids
        (entry,) = run["results"]
        assert entry["ruleId"] == "determinism"
        assert entry["level"] == "error"
        assert rule_ids[entry["ruleIndex"]] == "determinism"
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "snippet.py"
        assert location["region"] == {"startLine": 2, "startColumn": 5}
        json.dumps(document)

    def test_sarif_clean_run_has_no_results(self, tmp_path):
        document = result_to_sarif(_lint_file(tmp_path, "x = 1\n"))
        assert document["runs"][0]["results"] == []


class TestCli:
    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_findings_exit_one_with_json_artifact(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        out_file = tmp_path / "lint_findings.json"
        code = cli_main(
            ["lint", str(tmp_path), "--format", "json",
             "--output", str(out_file)]
        )
        assert code == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(out_file.read_text())
        assert stdout_payload == file_payload
        assert file_payload["counts"]["findings"] == 1

    def test_baseline_round_trip_via_cli(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            ["lint", str(tmp_path), "--write-baseline", str(baseline)]
        ) == 0
        assert cli_main(
            ["lint", str(tmp_path), "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in registered_rule_names():
            assert name in out

    def test_sarif_format_and_artifact(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        sarif_file = tmp_path / "lint.sarif"
        code = cli_main(
            ["lint", str(tmp_path), "--format", "sarif",
             "--sarif", str(sarif_file)]
        )
        assert code == 1
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(sarif_file.read_text())
        assert stdout_doc == file_doc
        assert file_doc["version"] == "2.1.0"
        (entry,) = file_doc["runs"][0]["results"]
        assert entry["ruleId"] == "determinism"

    def test_changed_lints_only_dirty_files(self, tmp_path, monkeypatch,
                                            capsys):
        import subprocess

        git = shutil.which("git")
        if git is None:
            pytest.skip("git not available")
        repo = tmp_path / "proj"
        (repo / "pkg").mkdir(parents=True)
        env_patch = {
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
        }
        for key, value in env_patch.items():
            monkeypatch.setenv(key, value)
        subprocess.run([git, "init", "-q"], cwd=repo, check=True)
        # A committed file with a finding: clean working tree, so a
        # --changed run must NOT visit (or report) it.
        (repo / "pkg" / "committed.py").write_text(
            "import time\nt = time.time()\n"
        )
        subprocess.run([git, "add", "."], cwd=repo, check=True)
        subprocess.run(
            [git, "commit", "-q", "-m", "seed"], cwd=repo, check=True
        )
        # An untracked file with a different finding: must be visited.
        (repo / "pkg" / "fresh.py").write_text(
            "import random\nx = random.random()\n"
        )
        monkeypatch.chdir(repo)
        code = cli_main(
            ["lint", str(repo / "pkg"), "--changed", "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] == 1
        (finding,) = payload["findings"]
        # Relpaths stay rooted as in a full run of the same paths.
        assert finding["path"] == "fresh.py"

    def test_changed_clean_worktree_scans_nothing(self, tmp_path,
                                                  monkeypatch, capsys):
        import subprocess

        git = shutil.which("git")
        if git is None:
            pytest.skip("git not available")
        repo = tmp_path / "proj"
        repo.mkdir()
        monkeypatch.setenv("GIT_AUTHOR_NAME", "t")
        monkeypatch.setenv("GIT_AUTHOR_EMAIL", "t@t")
        monkeypatch.setenv("GIT_COMMITTER_NAME", "t")
        monkeypatch.setenv("GIT_COMMITTER_EMAIL", "t@t")
        subprocess.run([git, "init", "-q"], cwd=repo, check=True)
        (repo / "bad.py").write_text("import time\nt = time.time()\n")
        subprocess.run([git, "add", "."], cwd=repo, check=True)
        subprocess.run(
            [git, "commit", "-q", "-m", "seed"], cwd=repo, check=True
        )
        monkeypatch.chdir(repo)
        assert cli_main(["lint", str(repo), "--changed"]) == 0
        out = capsys.readouterr().out
        assert "0 file(s)" in out or "clean" in out


class TestDocsSync:
    def test_usage_rule_table_matches_registry(self):
        from repro.analysis.docs_sync import diff_rules

        assert diff_rules(REPO_ROOT / "docs" / "USAGE.md") == []

    def test_missing_and_phantom_rules_are_drift(self, tmp_path):
        from repro.analysis.docs_sync import diff_rules

        doc = tmp_path / "USAGE.md"
        doc.write_text(
            "| Rule | Severity | What |\n| --- | --- | --- |\n"
            "| `determinism` | error | x |\n"
            "| `no-such-rule` | error | x |\n"
        )
        problems = diff_rules(doc)
        assert any("digest-coverage" in p and "missing" in p for p in problems)
        assert any("no-such-rule" in p and "not registered" in p
                   for p in problems)


class TestRepositoryIsClean:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        result = run_lint([REPO_ROOT / "src" / "repro"])
        assert result.findings == []
        assert result.files_scanned > 50
        # Every accepted exception carries a reason (bare-suppression would
        # otherwise appear in findings); keep the count visible so growth
        # is a conscious decision.
        assert len(result.suppressed) == 18
