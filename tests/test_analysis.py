"""Tests for adalint (repro.analysis): framework, rules, reporters, CLI.

Every rule gets a firing and a non-firing golden snippet; the framework
tests pin suppression handling (including the bare/unknown meta-rules),
the baseline filter, and the JSON report schema. The acceptance pair:
the re-introduced historic ``link_hops`` digest omission fixture must be
flagged, and the real ``src/repro`` tree must be clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    FRAMEWORK_RULES,
    REPORT_VERSION,
    Finding,
    default_rules,
    load_baseline,
    parse_suppressions,
    registered_rule_names,
    render_text,
    result_to_dict,
    run_lint,
)
from repro.analysis.rules import (
    DigestContract,
    DigestCoverageRule,
    FieldAllowance,
)
from repro.experiments.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "adalint"


def _lint_file(tmp_path, source, name="snippet.py", rules=None):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_lint([tmp_path], rules=rules)


def _rules_fired(result):
    return {finding.rule for finding in result.findings}


class TestFramework:
    def test_all_rules_registered(self):
        assert set(registered_rule_names()) == {
            "determinism",
            "digest-coverage",
            "frozen-mutation",
            "unit-consistency",
        }
        assert {rule.name for rule in default_rules()} == set(
            registered_rule_names()
        )

    def test_clean_file_is_clean(self, tmp_path):
        result = _lint_file(tmp_path, "x = 1\n")
        assert result.ok and result.files_scanned == 1
        assert result.findings == result.suppressed == result.baselined == []

    def test_syntax_error_reported_as_parse_error(self, tmp_path):
        result = _lint_file(tmp_path, "def broken(:\n")
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert not result.ok

    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(rule="r", severity="fatal", path="p.py", line=1, message="m")

    def test_suppression_parsing(self):
        table = parse_suppressions(
            [
                "x = 1",
                "y = 2  # adalint: disable=determinism -- observability",
                "z = 3  # adalint: disable=determinism, unit-consistency -- both",
            ]
        )
        assert set(table) == {2, 3}
        assert table[2].rules == ("determinism",)
        assert table[2].reason == "observability"
        assert table[3].covers("unit-consistency")

    def test_suppression_with_reason_mutes_the_finding(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time\n"
            "t = time.time()  # adalint: disable=determinism -- just a log stamp\n",
        )
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["determinism"]

    def test_disable_all_covers_every_rule(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time\n"
            "t = time.time()  # adalint: disable=all -- demo snippet\n",
        )
        assert result.ok and len(result.suppressed) == 1

    def test_bare_suppression_is_itself_a_finding(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time\nt = time.time()  # adalint: disable=determinism\n",
        )
        # The reason-less suppression does NOT mute, and is reported.
        assert _rules_fired(result) == {"determinism", "bare-suppression"}

    def test_unknown_suppression_is_reported(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "x = 1  # adalint: disable=no-such-rule -- typo'd rule name\n",
        )
        assert _rules_fired(result) == {"unknown-suppression"}

    def test_framework_findings_cannot_be_suppressed(self, tmp_path):
        # A reason-less suppression stays a finding even if another comment
        # tried to disable the meta-rule itself.
        assert "bare-suppression" in FRAMEWORK_RULES
        result = _lint_file(
            tmp_path,
            "import time\n"
            "t = time.time()  # adalint: disable=determinism, bare-suppression\n",
        )
        assert "bare-suppression" in _rules_fired(result)

    def test_baseline_mutes_on_rule_path_message(self, tmp_path):
        source = "import time\nt = time.time()\n"
        first = _lint_file(tmp_path, source)
        assert not first.ok
        baseline = {f.baseline_key() for f in first.findings}
        # Shift the finding to a different line: the baseline still matches.
        second = _lint_file(tmp_path, "# comment\n" + source)
        shifted = run_lint([tmp_path], baseline=baseline)
        assert second.findings and shifted.ok
        assert [f.rule for f in shifted.baselined] == ["determinism"]

    def test_load_baseline_accepts_full_report(self, tmp_path):
        result = _lint_file(tmp_path, "import time\nt = time.time()\n")
        report = tmp_path / "baseline.json"
        report.write_text(json.dumps(result_to_dict(result)))
        keys = load_baseline(report)
        assert keys == {f.baseline_key() for f in result.findings}


class TestDeterminismRule:
    def test_global_rng_draw_fires(self, tmp_path):
        result = _lint_file(tmp_path, "import random\nx = random.random()\n")
        assert _rules_fired(result) == {"determinism"}

    def test_aliased_numpy_global_draw_fires(self, tmp_path):
        result = _lint_file(
            tmp_path, "import numpy as np\nnp.random.shuffle([1, 2])\n"
        )
        assert _rules_fired(result) == {"determinism"}

    def test_unseeded_constructor_fires_seeded_passes(self, tmp_path):
        fired = _lint_file(tmp_path, "import random\nr = random.Random()\n")
        assert _rules_fired(fired) == {"determinism"}
        clean = _lint_file(
            tmp_path,
            "import random\nimport numpy as np\n"
            "r = random.Random(0)\ng = np.random.default_rng(7)\n"
            "x = g.normal()\n",
        )
        assert clean.ok

    def test_wall_clock_fires_outside_measurement_layers(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time as clock\nfrom datetime import datetime\n"
            "a = clock.perf_counter()\nb = datetime.now()\n",
        )
        assert [f.rule for f in result.findings] == ["determinism"] * 2

    def test_wall_clock_allowed_under_benchmarks(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "import time\nstart = time.perf_counter()\n",
            name="benchmarks/bench_sim.py",
        )
        assert result.ok

    def test_set_iteration_fires_sorted_and_dict_pass(self, tmp_path):
        fired = _lint_file(
            tmp_path,
            "for x in {1, 2}:\n    pass\n"
            "ys = [y for y in set([3, 4])]\n",
        )
        assert [f.rule for f in fired.findings] == ["determinism"] * 2
        clean = _lint_file(
            tmp_path,
            "for x in sorted({1, 2}):\n    pass\n"
            "d = {'a': 1}\nfor k in d:\n    pass\n",
        )
        assert clean.ok


class TestUnitConsistencyRule:
    def test_cross_dimension_add_and_compare_fire(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "def f(size_bytes, busy_seconds):\n"
            "    total = size_bytes + busy_seconds\n"
            "    if size_bytes > busy_seconds:\n"
            "        total += 1\n"
            "    return total\n",
            name="core/costs.py",
        )
        assert [f.rule for f in result.findings] == ["unit-consistency"] * 2

    def test_augassign_cross_dimension_fires(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "def f(peak_bytes, wait_seconds):\n"
            "    peak_bytes += wait_seconds\n"
            "    return peak_bytes\n",
            name="profiler/memory.py",
        )
        assert _rules_fired(result) == {"unit-consistency"}

    def test_same_dimension_and_conversion_calls_pass(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "def f(a_bytes, b_bytes, c_seconds, bw_bps):\n"
            "    total_bytes = a_bytes + b_bytes\n"
            "    t = c_seconds + seconds_for(a_bytes, bw_bps)\n"
            "    rate = a_bytes / c_seconds\n"  # division -> unknown dim
            "    return total_bytes, t, rate\n",
            name="hardware/model.py",
        )
        assert result.ok

    def test_not_enforced_outside_numeric_core(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "def f(a_bytes, b_seconds):\n    return a_bytes + b_seconds\n",
            name="report/charts.py",
        )
        assert result.ok


class TestFrozenMutationRule:
    def test_setattr_outside_post_init_fires(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "class C:\n"
            "    def poke(self):\n"
            "        object.__setattr__(self, 'x', 1)\n"
            "object.__setattr__(C, 'y', 2)\n",
        )
        assert [f.rule for f in result.findings] == ["frozen-mutation"] * 2

    def test_setattr_inside_post_init_and_setstate_passes(self, tmp_path):
        result = _lint_file(
            tmp_path,
            "class C:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, '_hash', 7)\n"
            "    def __setstate__(self, state):\n"
            "        object.__setattr__(self, '_hash', 8)\n",
        )
        assert result.ok


def _digest_tree(tmp_path, digest_source):
    (tmp_path / "data.py").write_text(
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class Point:\n"
        "    x: int\n"
        "    y: int\n"
    )
    (tmp_path / "digest.py").write_text(digest_source)
    return tmp_path


def _point_rule(allow=(), required=()):
    contract = DigestContract(
        digest_path="digest.py",
        digest_name="point_digest",
        sources=(("data.py", "Point"),),
        allow=allow,
        required_names=required,
    )
    return [DigestCoverageRule(contracts=(contract,))]


class TestDigestCoverageRule:
    def test_omitted_field_fires(self, tmp_path):
        _digest_tree(tmp_path, "def point_digest(p):\n    return str(p.x)\n")
        result = run_lint([tmp_path], rules=_point_rule())
        assert len(result.findings) == 1
        assert "Point.y" in result.findings[0].message

    def test_full_coverage_passes(self, tmp_path):
        _digest_tree(
            tmp_path, "def point_digest(p):\n    return f'{p.x},{p.y}'\n"
        )
        assert run_lint([tmp_path], rules=_point_rule()).ok

    def test_allowance_with_reason_passes(self, tmp_path):
        _digest_tree(tmp_path, "def point_digest(p):\n    return str(p.x)\n")
        rules = _point_rule(
            allow=(FieldAllowance("Point.y", "label only, never simulated"),)
        )
        assert run_lint([tmp_path], rules=rules).ok

    def test_reasonless_allowance_fires(self, tmp_path):
        _digest_tree(tmp_path, "def point_digest(p):\n    return str(p.x)\n")
        rules = _point_rule(allow=(FieldAllowance("Point.y", "  "),))
        result = run_lint([tmp_path], rules=rules)
        assert any("carries no reason" in f.message for f in result.findings)

    def test_stale_allowance_fires(self, tmp_path):
        _digest_tree(
            tmp_path, "def point_digest(p):\n    return f'{p.x},{p.y}'\n"
        )
        rules = _point_rule(allow=(FieldAllowance("Point.z", "gone"),))
        result = run_lint([tmp_path], rules=rules)
        assert any("stale allowance" in f.message for f in result.findings)

    def test_missing_required_name_fires(self, tmp_path):
        _digest_tree(
            tmp_path, "def point_digest(p):\n    return f'{p.x},{p.y}'\n"
        )
        result = run_lint([tmp_path], rules=_point_rule(required=("seed",)))
        assert any("required input 'seed'" in f.message for f in result.findings)

    def test_missing_digest_function_breaks_contract(self, tmp_path):
        _digest_tree(tmp_path, "def other():\n    return 1\n")
        result = run_lint([tmp_path], rules=_point_rule())
        assert any("contract broken" in f.message for f in result.findings)

    def test_link_hops_fixture_is_flagged(self):
        # The historic PR 4 bug, re-introduced verbatim: the pre-fix
        # schedule_digest must produce exactly one finding, naming
        # Schedule.link_hops — no more, no less.
        result = run_lint([FIXTURES / "link_hops_omission"])
        assert [f.rule for f in result.findings] == ["digest-coverage"]
        assert "Schedule.link_hops" in result.findings[0].message
        assert result.findings[0].path == "pipeline/simulator.py"


class TestReporters:
    def _result(self, tmp_path):
        return _lint_file(tmp_path, "import time\nt = time.time()\n")

    def test_json_schema(self, tmp_path):
        payload = result_to_dict(self._result(tmp_path))
        assert payload["adalint_version"] == REPORT_VERSION
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {
            "findings": 1,
            "suppressed": 0,
            "baselined": 0,
        }
        (entry,) = payload["findings"]
        assert set(entry) == {"rule", "severity", "path", "line", "message"}
        assert entry["rule"] == "determinism" and entry["line"] == 2
        json.dumps(payload)  # must be serializable as-is

    def test_text_rendering(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "snippet.py:2: error [determinism]" in text
        clean = render_text(_lint_file(tmp_path / "other", "x = 1\n"))
        assert "clean" in clean


class TestCli:
    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert cli_main(["lint", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_findings_exit_one_with_json_artifact(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        out_file = tmp_path / "lint_findings.json"
        code = cli_main(
            ["lint", str(tmp_path), "--format", "json",
             "--output", str(out_file)]
        )
        assert code == 1
        stdout_payload = json.loads(capsys.readouterr().out)
        file_payload = json.loads(out_file.read_text())
        assert stdout_payload == file_payload
        assert file_payload["counts"]["findings"] == 1

    def test_baseline_round_trip_via_cli(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"
        assert cli_main(
            ["lint", str(tmp_path), "--write-baseline", str(baseline)]
        ) == 0
        assert cli_main(
            ["lint", str(tmp_path), "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in registered_rule_names():
            assert name in out


class TestRepositoryIsClean:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        result = run_lint([REPO_ROOT / "src" / "repro"])
        assert result.findings == []
        assert result.files_scanned > 50
        # Every accepted exception carries a reason (bare-suppression would
        # otherwise appear in findings); keep the count visible so growth
        # is a conscious decision.
        assert len(result.suppressed) == 18
