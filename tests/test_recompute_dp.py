"""Tests for the adaptive-recomputation knapsack (Section 4.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.recompute_dp import (
    UnitItem,
    brute_force_recompute,
    optimize_stage_recompute,
)


def _item(name="u", value=1.0, weight=100.0, copies=1):
    return UnitItem(name=name, value=value, weight_bytes=weight, copies=copies)


class TestBasics:
    def test_negative_budget_is_infeasible(self):
        result = optimize_stage_recompute([_item()], -1.0, in_flight=1)
        assert not result.feasible

    def test_zero_budget_saves_nothing(self):
        result = optimize_stage_recompute([_item()], 0.0, in_flight=1)
        assert result.feasible
        assert result.saved_value == 0.0
        assert result.saved_counts == {"u": 0}

    def test_everything_fits(self):
        items = [_item("a", 1.0, 10, 3), _item("b", 2.0, 20, 2)]
        result = optimize_stage_recompute(items, 1_000.0, in_flight=1)
        assert result.saved_counts == {"a": 3, "b": 2}
        assert result.saved_value == pytest.approx(3 * 1.0 + 2 * 2.0)
        assert result.saved_bytes == pytest.approx(3 * 10 + 2 * 20)

    def test_picks_denser_item_under_pressure(self):
        # Same weight, different value: the valuable one must win.
        items = [_item("cheap", 1.0, 100), _item("rich", 5.0, 100)]
        result = optimize_stage_recompute(items, 100.0, in_flight=1)
        assert result.saved_counts == {"cheap": 0, "rich": 1}

    def test_in_flight_multiplier_scales_weights(self):
        items = [_item("a", 1.0, 100, copies=4)]
        # Budget 400 fits 4 copies at in_flight=1 but only 2 at in_flight=2.
        assert optimize_stage_recompute(items, 400, 1).saved_counts["a"] == 4
        assert optimize_stage_recompute(items, 400, 2).saved_counts["a"] == 2

    def test_no_items(self):
        result = optimize_stage_recompute([], 100.0, in_flight=1)
        assert result.feasible and result.saved_value == 0.0

    def test_bounded_copies_partial_take(self):
        items = [_item("a", 1.0, 100, copies=10)]
        result = optimize_stage_recompute(items, 350.0, in_flight=1)
        assert result.saved_counts["a"] == 3

    def test_counts_consistent_with_value_and_bytes(self):
        items = [_item("a", 1.5, 64, 5), _item("b", 0.7, 48, 3)]
        result = optimize_stage_recompute(items, 300.0, in_flight=1)
        expected_value = (
            result.saved_counts["a"] * 1.5 + result.saved_counts["b"] * 0.7
        )
        expected_bytes = result.saved_counts["a"] * 64 + result.saved_counts["b"] * 48
        assert result.saved_value == pytest.approx(expected_value)
        assert result.saved_bytes == pytest.approx(expected_bytes)
        assert expected_bytes <= 300.0


class TestQuantization:
    def test_fractional_weight_straddling_budget_is_rejected(self):
        # Regression: weight 10.4 used to round *down* to 10, making the DP
        # "save" an item whose true cost (10.4) exceeds the budget (10).
        # Ceil rounding prices it at 11 and correctly recomputes it.
        items = [_item("frac", value=1.0, weight=10.4)]
        result = optimize_stage_recompute(items, 10.0, in_flight=1)
        assert result.feasible
        assert result.saved_counts == {"frac": 0}
        assert result.saved_bytes == 0.0
        _, best = brute_force_recompute(items, 10.0, 1)
        assert best == 0.0  # the true optimum agrees: it cannot be saved

    def test_fractional_product_with_in_flight_straddles(self):
        # 3.48 * 3 = 10.44: rounding the product down to 10 would fit the
        # 10-byte budget; the true weight does not.
        items = [_item("frac", value=2.0, weight=3.48)]
        result = optimize_stage_recompute(items, 10.0, in_flight=3)
        assert result.saved_counts == {"frac": 0}
        # With a budget covering the true cost, the item is saved again.
        result = optimize_stage_recompute(items, 11.0, in_flight=3)
        assert result.saved_counts == {"frac": 1}

    def test_equal_value_tie_breaks_to_less_memory(self):
        # Both solutions earn 1.0; backtracking from the leftmost optimal
        # column must pick the lighter save set.
        items = [_item("light", 1.0, 1.0), _item("heavy", 1.0, 9.0)]
        result = optimize_stage_recompute(items, 9.0, in_flight=1)
        assert result.saved_value == pytest.approx(1.0)
        assert result.saved_counts == {"light": 1, "heavy": 0}
        assert result.saved_bytes == pytest.approx(1.0)

    def test_gcd_exploited_exactly(self):
        # All weights share gcd 4096: quantization must stay exact.
        items = [
            _item("a", 3.0, 3 * 4096, 2),
            _item("b", 2.0, 2 * 4096, 2),
            _item("c", 1.0, 4096, 2),
        ]
        budget = 9 * 4096
        result = optimize_stage_recompute(items, budget, in_flight=1)
        _, best = brute_force_recompute(items, budget, 1)
        assert result.saved_value == pytest.approx(best)

    def test_max_cells_guard_is_conservative(self):
        # With a tiny cell budget, quantization coarsens but never
        # overshoots memory.
        items = [_item(f"u{i}", float(i + 1), 1000.0 + i, 1) for i in range(8)]
        budget = 4000.0
        result = optimize_stage_recompute(items, budget, 1, max_cells=64)
        assert result.feasible
        assert result.saved_bytes <= budget

    def test_guarded_solution_not_much_worse(self):
        items = [_item(f"u{i}", 1.0, 1024.0, 1) for i in range(10)]
        budget = 5 * 1024.0
        exact = optimize_stage_recompute(items, budget, 1)
        coarse = optimize_stage_recompute(items, budget, 1, max_cells=128)
        assert coarse.saved_value <= exact.saved_value
        assert coarse.saved_value >= 0.5 * exact.saved_value


@st.composite
def knapsack_instances(draw):
    num_types = draw(st.integers(min_value=1, max_value=4))
    items = []
    for index in range(num_types):
        items.append(
            UnitItem(
                name=f"u{index}",
                value=draw(st.floats(min_value=0.1, max_value=10.0)),
                weight_bytes=float(draw(st.integers(min_value=1, max_value=50))),
                copies=draw(st.integers(min_value=1, max_value=3)),
            )
        )
    budget = float(draw(st.integers(min_value=0, max_value=200)))
    in_flight = draw(st.integers(min_value=1, max_value=4))
    return items, budget, in_flight


@st.composite
def fractional_knapsack_instances(draw):
    """Fractional weights and budgets — the rounding-bug regime.

    Integer-only draws masked the old round-half-down under-count; these
    instances exercise quantization on weights that do not divide evenly.
    """
    num_types = draw(st.integers(min_value=1, max_value=4))
    items = []
    for index in range(num_types):
        items.append(
            UnitItem(
                name=f"u{index}",
                value=draw(st.floats(min_value=0.1, max_value=10.0)),
                weight_bytes=draw(st.floats(min_value=0.3, max_value=50.0)),
                copies=draw(st.integers(min_value=1, max_value=3)),
            )
        )
    budget = draw(st.floats(min_value=0.0, max_value=200.0))
    in_flight = draw(st.integers(min_value=1, max_value=4))
    return items, budget, in_flight


class TestAgainstBruteForce:
    @given(knapsack_instances())
    @settings(max_examples=120, deadline=None)
    def test_matches_exponential_reference(self, instance):
        items, budget, in_flight = instance
        result = optimize_stage_recompute(items, budget, in_flight)
        feasible, best = brute_force_recompute(items, budget, in_flight)
        assert result.feasible == feasible
        assert result.saved_value == pytest.approx(best, abs=1e-9)

    @given(fractional_knapsack_instances())
    @settings(max_examples=120, deadline=None)
    def test_fractional_weights_stay_budget_feasible(self, instance):
        # Quantizing fractional weights (ceil) may cost optimality but must
        # never cost feasibility: the returned save set's *true* byte
        # weight (x in-flight) has to fit the budget, and its value can
        # never beat the exponential reference.
        items, budget, in_flight = instance
        result = optimize_stage_recompute(items, budget, in_flight)
        feasible, best = brute_force_recompute(items, budget, in_flight)
        assert result.feasible == feasible
        if result.feasible:
            used = sum(
                result.saved_counts[item.name] * item.weight_bytes * in_flight
                for item in items
            )
            assert used <= budget + 1e-9
            assert result.saved_value <= best + 1e-9

    @given(knapsack_instances())
    @settings(max_examples=120, deadline=None)
    def test_chosen_set_respects_budget(self, instance):
        items, budget, in_flight = instance
        result = optimize_stage_recompute(items, budget, in_flight)
        if result.feasible:
            used = sum(
                result.saved_counts[item.name] * item.weight_bytes * in_flight
                for item in items
            )
            assert used <= budget + 1e-9

    @given(knapsack_instances())
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_budget(self, instance):
        items, budget, in_flight = instance
        smaller = optimize_stage_recompute(items, budget, in_flight)
        larger = optimize_stage_recompute(items, budget + 100, in_flight)
        assert larger.saved_value >= smaller.saved_value - 1e-9
